/**
 * @file
 * Kernel and filesystem tests: permissions, passphrase-gated opens
 * (the chmod-777 defence), DAX faults and DF-bit stamping, key
 * lifecycle, mmap/munmap, secure deletion.
 */

#include <gtest/gtest.h>

#include "common/logging.hh"
#include "fs/nvmfs.hh"
#include "sim/system.hh"

using namespace fsencr;

namespace {

SimConfig
smallConfig(Scheme scheme)
{
    SimConfig cfg;
    cfg.scheme = scheme;
    cfg.seed = 1234;
    return cfg;
}

struct OsFixture : ::testing::Test
{
    OsFixture() : sys(smallConfig(Scheme::FsEncr))
    {
        sys.provisionAdmin("root-pw");
        sys.bootLogin("root-pw");
        alice = sys.addUser("alice", 1000, 100, "alice-pw");
        bob = sys.addUser("bob", 1001, 100, "bob-pw");
        eve = sys.addUser("eve", 2000, 200, "eve-pw");
        alice_pid = sys.createProcess(alice);
        sys.runOnCore(0, alice_pid);
    }

    System sys;
    std::uint32_t alice, bob, eve;
    std::uint32_t alice_pid;
};

} // namespace

TEST_F(OsFixture, CreateLookupUnlink)
{
    int fd = sys.creat(0, "/pmem/a.txt", 0600, OpenFlags::Encrypted, "alice-pw");
    EXPECT_GE(fd, 0);
    EXPECT_TRUE(sys.fs().lookup("/pmem/a.txt").has_value());
    sys.unlink(0, "/pmem/a.txt");
    EXPECT_FALSE(sys.fs().lookup("/pmem/a.txt").has_value());
}

TEST_F(OsFixture, DuplicateCreateIsFatal)
{
    sys.creat(0, "/pmem/dup", 0600, OpenFlags::Encrypted, "alice-pw");
    EXPECT_THROW(sys.creat(0, "/pmem/dup", 0600, OpenFlags::Encrypted, "alice-pw"),
                 FatalError);
}

TEST_F(OsFixture, FileReadWriteRoundTrip)
{
    int fd = sys.creat(0, "/pmem/data", 0600, OpenFlags::Encrypted, "alice-pw");
    const char msg[] = "persistent secret";
    sys.fileWrite(0, fd, 0, msg, sizeof(msg));
    char out[sizeof(msg)] = {};
    sys.fileRead(0, fd, 0, out, sizeof(out));
    EXPECT_STREQ(out, msg);
}

TEST_F(OsFixture, CrossPageFileIo)
{
    int fd = sys.creat(0, "/pmem/big", 0600, OpenFlags::Encrypted, "alice-pw");
    std::vector<std::uint8_t> data(3 * pageSize + 100);
    for (std::size_t i = 0; i < data.size(); ++i)
        data[i] = static_cast<std::uint8_t>(i * 13);
    sys.fileWrite(0, fd, 500, data.data(), data.size());
    std::vector<std::uint8_t> out(data.size());
    sys.fileRead(0, fd, 500, out.data(), out.size());
    EXPECT_EQ(out, data);
}

TEST_F(OsFixture, MmapLoadStore)
{
    int fd = sys.creat(0, "/pmem/m", 0600, OpenFlags::Encrypted, "alice-pw");
    sys.ftruncate(0, fd, 4 * pageSize);
    Addr va = sys.mmapFile(0, fd, 4 * pageSize);

    std::uint64_t magic = 0x1122334455667788ull;
    sys.write<std::uint64_t>(0, va + 8192, magic);
    EXPECT_EQ(sys.read<std::uint64_t>(0, va + 8192), magic);
}

TEST_F(OsFixture, DaxFaultSetsDfBit)
{
    int fd = sys.creat(0, "/pmem/df", 0600, OpenFlags::Encrypted, "alice-pw");
    sys.ftruncate(0, fd, pageSize);
    Addr va = sys.mmapFile(0, fd, pageSize);
    sys.read<std::uint8_t>(0, va); // fault

    const Process &p = sys.kernel().process(alice_pid);
    Addr pte = p.pageTable.at(pageNumber(va));
    EXPECT_TRUE(hasDfBit(pte));
    // The frame is the file's own NVM page (DAX!), inside PMEM.
    EXPECT_TRUE(sys.layout().isPmem(stripDfBit(pte)));
}

TEST_F(OsFixture, UnencryptedFileHasNoDfBit)
{
    int fd = sys.creat(0, "/pmem/plain", 0600, OpenFlags::None, "");
    sys.ftruncate(0, fd, pageSize);
    Addr va = sys.mmapFile(0, fd, pageSize);
    sys.read<std::uint8_t>(0, va);
    const Process &p = sys.kernel().process(alice_pid);
    EXPECT_FALSE(hasDfBit(p.pageTable.at(pageNumber(va))));
}

TEST_F(OsFixture, AnonymousMapUsesGeneralMemory)
{
    Addr va = sys.mmapAnon(0, 2 * pageSize);
    sys.write<std::uint32_t>(0, va, 42);
    const Process &p = sys.kernel().process(alice_pid);
    Addr pte = p.pageTable.at(pageNumber(va));
    EXPECT_FALSE(hasDfBit(pte));
    EXPECT_TRUE(sys.layout().isGeneral(pte));
}

TEST_F(OsFixture, PageFaultOnlyOnFirstTouch)
{
    int fd = sys.creat(0, "/pmem/fault", 0600, OpenFlags::Encrypted, "alice-pw");
    sys.ftruncate(0, fd, pageSize);
    Addr va = sys.mmapFile(0, fd, pageSize);
    std::uint64_t faults0 = sys.kernel().pageFaults();
    sys.read<std::uint8_t>(0, va);
    sys.read<std::uint8_t>(0, va + 100);
    sys.read<std::uint8_t>(0, va + 200);
    EXPECT_EQ(sys.kernel().pageFaults(), faults0 + 1);
}

TEST_F(OsFixture, SegfaultOnUnmappedAccess)
{
    EXPECT_THROW(sys.read<std::uint8_t>(0, 0xdead0000), FatalError);
}

TEST_F(OsFixture, PermissionDeniedForOtherUser)
{
    sys.creat(0, "/pmem/secret", 0600, OpenFlags::Encrypted, "alice-pw");
    std::uint32_t eve_pid = sys.createProcess(eve);
    sys.runOnCore(1, eve_pid);
    EXPECT_EQ(sys.open(1, "/pmem/secret", OpenFlags::None, "eve-pw"), -1);
}

TEST_F(OsFixture, GroupMemberReadsGroupReadableFile)
{
    sys.creat(0, "/pmem/shared", 0640, OpenFlags::Encrypted, "alice-pw");
    std::uint32_t bob_pid = sys.createProcess(bob);
    sys.runOnCore(1, bob_pid);
    // Bob is in alice's group and knows the file passphrase.
    EXPECT_GE(sys.open(1, "/pmem/shared", OpenFlags::None, "alice-pw"), 0);
}

TEST_F(OsFixture, Chmod777DefenceViaPassphrase)
{
    // The paper's Section VI scenario: accidental chmod 777 would
    // expose the file under plain DAC, but the open-time passphrase
    // check still blocks the curious user.
    sys.creat(0, "/pmem/oops", 0600, OpenFlags::Encrypted, "alice-pw");
    sys.chmod(0, "/pmem/oops", 0666);

    std::uint32_t eve_pid = sys.createProcess(eve);
    sys.runOnCore(1, eve_pid);
    EXPECT_EQ(sys.open(1, "/pmem/oops", OpenFlags::None, "eve-pw"), -1);
    EXPECT_EQ(sys.open(1, "/pmem/oops", OpenFlags::None, "guessed-pw"), -1);
    // The rightful passphrase (however obtained) does open it — the
    // defence is the passphrase, not the identity.
    EXPECT_GE(sys.open(1, "/pmem/oops", OpenFlags::None, "alice-pw"), 0);
}

TEST_F(OsFixture, UnencryptedFileOpensWithoutPassphrase)
{
    sys.creat(0, "/pmem/pub", 0644, OpenFlags::None, "");
    std::uint32_t eve_pid = sys.createProcess(eve);
    sys.runOnCore(1, eve_pid);
    EXPECT_GE(sys.open(1, "/pmem/pub", OpenFlags::None, ""), 0);
}

TEST_F(OsFixture, WrongPassphraseDeniedForOwnerToo)
{
    sys.creat(0, "/pmem/own", 0600, OpenFlags::Encrypted, "alice-pw");
    EXPECT_EQ(sys.open(0, "/pmem/own", OpenFlags::None, "wrong"), -1);
    EXPECT_GE(sys.open(0, "/pmem/own", OpenFlags::None, "alice-pw"), 0);
}

TEST_F(OsFixture, UnlinkRemovesOttKey)
{
    sys.creat(0, "/pmem/gone", 0600, OpenFlags::Encrypted, "alice-pw");
    auto ino = sys.fs().lookup("/pmem/gone");
    ASSERT_TRUE(ino.has_value());
    EXPECT_TRUE(sys.mc().ott().lookup(100, *ino, 0).found);
    sys.unlink(0, "/pmem/gone");
    EXPECT_FALSE(sys.mc().ott().lookup(100, *ino, 0).found);
}

TEST_F(OsFixture, UnlinkShredsData)
{
    int fd = sys.creat(0, "/pmem/shred", 0600, OpenFlags::Encrypted, "alice-pw");
    const char msg[] = "top secret";
    sys.fileWrite(0, fd, 0, msg, sizeof(msg));
    sys.shutdown(); // push everything to NVM
    auto ino = sys.fs().lookup("/pmem/shred");
    Addr page = sys.fs().inode(*ino).blocks[0];
    sys.unlink(0, "/pmem/shred");

    // Raw NVM must not contain the plaintext (it never did — it is
    // ciphertext) and the shred must have cleared the ECC trail.
    EXPECT_FALSE(sys.device().hasEcc(page));
}

TEST_F(OsFixture, FsyncMakesSyscallWritesDurable)
{
    int fd = sys.creat(0, "/pmem/dur", 0600, OpenFlags::Encrypted, "alice-pw");
    const char msg[] = "must survive the crash";
    sys.fileWrite(0, fd, 0, msg, sizeof(msg));
    sys.fsync(0, fd);
    sys.crash();
    ASSERT_TRUE(sys.recover());
    char out[sizeof(msg)] = {};
    sys.fileRead(0, fd, 0, out, sizeof(out));
    EXPECT_STREQ(out, msg);
}

TEST_F(OsFixture, UnsyncedSyscallWritesCanBeLost)
{
    int fd = sys.creat(0, "/pmem/vol", 0600, OpenFlags::Encrypted, "alice-pw");
    const char msg[] = "never flushed";
    sys.fileWrite(0, fd, 0, msg, sizeof(msg));
    sys.crash();
    ASSERT_TRUE(sys.recover());
    char out[sizeof(msg)] = {};
    sys.fileRead(0, fd, 0, out, sizeof(out));
    EXPECT_STRNE(out, msg);
}

TEST_F(OsFixture, FsyncBadFdIsFatal)
{
    EXPECT_THROW(sys.fsync(0, 12345), FatalError);
}

TEST_F(OsFixture, MunmapInvalidatesTranslation)
{
    int fd = sys.creat(0, "/pmem/mm", 0600, OpenFlags::Encrypted, "alice-pw");
    sys.ftruncate(0, fd, pageSize);
    Addr va = sys.mmapFile(0, fd, pageSize);
    sys.read<std::uint8_t>(0, va);
    sys.kernel().munmap(alice_pid, va);
    const Process &p = sys.kernel().process(alice_pid);
    EXPECT_EQ(p.pageTable.count(pageNumber(va)), 0u);
}

TEST_F(OsFixture, CopyFilePreservesContentsAcrossKeys)
{
    int fd = sys.creat(0, "/pmem/orig", 0600, OpenFlags::Encrypted, "alice-pw");
    std::vector<std::uint8_t> data(2 * pageSize);
    for (std::size_t i = 0; i < data.size(); ++i)
        data[i] = static_cast<std::uint8_t>(i);
    sys.fileWrite(0, fd, 0, data.data(), data.size());

    sys.copyFile(0, "/pmem/orig", "/pmem/copy", "alice-pw");

    int cfd = sys.open(0, "/pmem/copy", OpenFlags::None, "alice-pw");
    ASSERT_GE(cfd, 0);
    std::vector<std::uint8_t> out(data.size());
    sys.fileRead(0, cfd, 0, out.data(), out.size());
    EXPECT_EQ(out, data);

    // The two files hold different ciphertext for identical plaintext
    // (different FECB counters / physical pages).
    auto src_ino = sys.fs().lookup("/pmem/orig");
    auto dst_ino = sys.fs().lookup("/pmem/copy");
    sys.shutdown();
    std::uint8_t c1[blockSize], c2[blockSize];
    sys.device().readLine(sys.fs().inode(*src_ino).blocks[0], c1);
    sys.device().readLine(sys.fs().inode(*dst_ino).blocks[0], c2);
    EXPECT_NE(0, std::memcmp(c1, c2, blockSize));
}

TEST(NvmFilesystemUnit, PermissionMatrix)
{
    Inode n;
    n.uid = 1;
    n.gid = 10;
    n.mode = 0640;
    EXPECT_TRUE(NvmFilesystem::permits(n, 1, 10, false));
    EXPECT_TRUE(NvmFilesystem::permits(n, 1, 10, true));
    EXPECT_TRUE(NvmFilesystem::permits(n, 2, 10, false));  // group r
    EXPECT_FALSE(NvmFilesystem::permits(n, 2, 10, true));  // group !w
    EXPECT_FALSE(NvmFilesystem::permits(n, 3, 11, false)); // other
    EXPECT_TRUE(NvmFilesystem::permits(n, 0, 99, true));   // root
}

TEST(NvmFilesystemUnit, BlockAllocationAndReuse)
{
    PhysLayout layout{LayoutParams{}};
    NvmFilesystem fs(layout);
    std::uint32_t a = fs.create("/a", 1, 1, 0600, false);
    fs.extendTo(a, 10 * pageSize);
    EXPECT_EQ(fs.inode(a).blocks.size(), 10u);
    EXPECT_EQ(fs.blocksInUse(), 10u);

    std::vector<Addr> freed = fs.unlink("/a");
    EXPECT_EQ(freed.size(), 10u);
    EXPECT_EQ(fs.blocksInUse(), 0u);

    std::uint32_t b = fs.create("/b", 1, 1, 0600, false);
    fs.extendTo(b, pageSize);
    EXPECT_EQ(fs.blocksInUse(), 1u);
}

TEST(NvmFilesystemUnit, BlockPaddrTranslation)
{
    PhysLayout layout{LayoutParams{}};
    NvmFilesystem fs(layout);
    std::uint32_t a = fs.create("/f", 1, 1, 0600, false);
    fs.extendTo(a, 2 * pageSize);
    Addr p0 = fs.blockPaddr(a, 0);
    Addr p1 = fs.blockPaddr(a, pageSize + 123);
    EXPECT_TRUE(layout.isPmem(p0));
    EXPECT_EQ(pageOffset(p1), 123u);
    EXPECT_THROW(fs.blockPaddr(a, 5 * pageSize), FatalError);
}

TEST(NvmFilesystemUnit, InodeNumbersAreUnique)
{
    PhysLayout layout{LayoutParams{}};
    NvmFilesystem fs(layout);
    std::uint32_t a = fs.create("/x", 1, 1, 0600, false);
    std::uint32_t b = fs.create("/y", 1, 1, 0600, false);
    EXPECT_NE(a, b);
}
