/**
 * @file
 * Contention-profiler tests: --profile must be observation only
 * (ticks and NVM traffic bit-identical to an unprofiled run), the
 * per-request critical-path buckets must sum tick-exactly to every
 * end-to-end latency, the aggregates must be deterministic across
 * reruns, and degenerate configurations must pin the expected
 * buckets to zero (banks=1 => no MSHR wait, no overlap).
 */

#include <gtest/gtest.h>

#include <sstream>

#include "bench/harness.hh"
#include "common/compare.hh"
#include "common/json.hh"
#include "common/profile.hh"
#include "common/report.hh"
#include "sim/system.hh"
#include "workloads/dax_micro.hh"
#include "workloads/pmemkv_bench.hh"
#include "workloads/workload.hh"

using namespace fsencr;
using profile::Profiler;
using profile::ReqClass;
using profile::Res;
using profile::WaitKind;

namespace {

SimConfig
profiledConfig(unsigned banks = 4, unsigned mshrs = 8)
{
    SimConfig cfg;
    cfg.scheme = Scheme::FsEncr;
    cfg.pcm.mcBanks = banks;
    cfg.pcm.mcMshrs = mshrs;
    cfg.profile = true;
    return cfg;
}

workloads::WorkloadResult
runFill(System &sys, unsigned ops = 512)
{
    workloads::PmemkvConfig kv;
    kv.op = workloads::PmemkvOp::FillRandom;
    kv.numKeys = 256;
    kv.numOps = ops;
    kv.valueBytes = 64;
    workloads::PmemkvWorkload w(kv);
    return workloads::runWorkload(sys, w);
}

Tick
classTotal(const Profiler &p, ReqClass c)
{
    Tick sum = 0;
    for (unsigned k = 0; k < profile::numKinds; ++k)
        sum += p.classTicks(c, static_cast<WaitKind>(k));
    return sum;
}

std::string
profileJson(const Profiler &p, Tick span)
{
    std::ostringstream os;
    {
        report::JsonWriter w(os);
        w.beginObject();
        report::writeProfileSection(w, p, span);
        w.endObject();
    }
    return os.str();
}

} // namespace

TEST(Profile, OffMeansNoProfilerAttached)
{
    SimConfig cfg = profiledConfig();
    cfg.profile = false;
    System sys(cfg);
    EXPECT_EQ(sys.mc().profiler(), nullptr);
}

TEST(Profile, ObservationOnlyTicksAndTrafficIdentical)
{
    SimConfig on_cfg = profiledConfig();
    SimConfig off_cfg = on_cfg;
    off_cfg.profile = false;

    System on(on_cfg), off(off_cfg);
    workloads::WorkloadResult ron = runFill(on);
    workloads::WorkloadResult roff = runFill(off);

    EXPECT_EQ(ron.ticks, roff.ticks);
    EXPECT_EQ(ron.nvmReads, roff.nvmReads);
    EXPECT_EQ(ron.nvmWrites, roff.nvmWrites);
    EXPECT_EQ(ron.operations, roff.operations);
    ASSERT_NE(on.mc().profiler(), nullptr);
    EXPECT_GT(on.mc().profiler()->requests(), 0u);
}

TEST(Profile, WaitPlusServiceReconcilesTickExactly)
{
    SimConfig cfg = profiledConfig();
    System sys(cfg);
    runFill(sys);

    const Profiler *p = sys.mc().profiler();
    ASSERT_NE(p, nullptr);
    EXPECT_EQ(p->identityViolations(), 0u);

    // Every booked tick of every class sums to the end-to-end latency
    // the controller measured — the per-request identity, aggregated.
    Tick sum = 0;
    for (unsigned c = 0; c < profile::numClasses; ++c)
        sum += classTotal(*p, static_cast<ReqClass>(c));
    EXPECT_EQ(sum, p->totalLatency());

    // Blocker counts partition the requests.
    std::uint64_t blockers = 0;
    for (unsigned k = 0; k < profile::numKinds; ++k)
        blockers += p->blockerCount(static_cast<WaitKind>(k));
    EXPECT_EQ(blockers, p->requests());
}

TEST(Profile, SerialChainsReconcileToo)
{
    // banks=1 exercises the serial fetchSecondMeta path where both
    // chains are visible end to end.
    SimConfig cfg = profiledConfig(/*banks=*/1);
    System sys(cfg);
    runFill(sys);

    const Profiler *p = sys.mc().profiler();
    ASSERT_NE(p, nullptr);
    EXPECT_EQ(p->identityViolations(), 0u);
    Tick sum = 0;
    for (unsigned c = 0; c < profile::numClasses; ++c)
        sum += classTotal(*p, static_cast<ReqClass>(c));
    EXPECT_EQ(sum, p->totalLatency());
}

TEST(Profile, DeterministicAcrossReruns)
{
    SimConfig cfg = profiledConfig();
    System a(cfg), b(cfg);
    workloads::WorkloadResult ra = runFill(a);
    workloads::WorkloadResult rb = runFill(b);
    ASSERT_EQ(ra.ticks, rb.ticks);

    const Profiler *pa = a.mc().profiler();
    const Profiler *pb = b.mc().profiler();
    ASSERT_NE(pa, nullptr);
    ASSERT_NE(pb, nullptr);

    // The rendered section — every class bucket, histogram, blocker
    // count, resource row and projection — must match byte for byte.
    EXPECT_EQ(profileJson(*pa, ra.ticks), profileJson(*pb, rb.ticks));
}

TEST(Profile, SingleBankHasNoMshrWaitAndNoOverlap)
{
    SimConfig cfg = profiledConfig(/*banks=*/1);
    System sys(cfg);
    runFill(sys);

    const Profiler *p = sys.mc().profiler();
    ASSERT_NE(p, nullptr);
    // The serial model issues one chain at a time: nothing ever waits
    // for an issue slot, and no serial ticks are hidden by overlap.
    EXPECT_EQ(p->kindTicks(WaitKind::Mshr), 0u);
    EXPECT_EQ(sys.mc().overlapTicks(), 0u);
}

TEST(Profile, BankedAuditChainSeesBankWait)
{
    SimConfig cfg = profiledConfig(/*banks=*/4);
    cfg.sec.auditEnabled = true;
    System sys(cfg);
    workloads::DaxMicroConfig c;
    c.kind = workloads::DaxMicroKind::Dax2;
    c.spanBytes = 256 << 10;
    workloads::DaxMicroWorkload w(c);
    workloads::runWorkload(sys, w);

    const Profiler *p = sys.mc().profiler();
    ASSERT_NE(p, nullptr);
    EXPECT_EQ(p->identityViolations(), 0u);
    // Audit WCB drains burst consecutive lines into the same banks:
    // with the banked device some of the visible flush latency must
    // be queueing, not service.
    EXPECT_GT(classTotal(*p, ReqClass::AuditCls), 0u);
    EXPECT_GT(p->classTicks(ReqClass::AuditCls, WaitKind::Bank), 0u);
    EXPECT_GT(p->resource(Res::AuditWcb).arrivals, 0u);
}

TEST(Profile, LittlesLawRowsArePopulated)
{
    SimConfig cfg = profiledConfig();
    System sys(cfg);
    workloads::WorkloadResult r = runFill(sys);

    const Profiler *p = sys.mc().profiler();
    ASSERT_NE(p, nullptr);
    const profile::Resource &ott = p->resource(Res::Ott);
    const profile::Resource &meta = p->resource(Res::MetaCache);
    EXPECT_GT(ott.arrivals, 0u);
    EXPECT_GT(ott.occupancy, 0u);
    EXPECT_GT(meta.arrivals, 0u);

    // The NVM-bank row is synced from the device's own authoritative
    // accounting by the profiler() accessor; the device also counts
    // metadata and audit traffic the workload totals don't include.
    const profile::Resource &banks = p->resource(Res::NvmBanks);
    EXPECT_GE(banks.arrivals, r.nvmReads + r.nvmWrites);
    EXPECT_GT(banks.occupancy, 0u);
    EXPECT_GE(banks.capacity, 1u);
}

TEST(Profile, AmdahlProjectionIsConsistent)
{
    SimConfig cfg = profiledConfig(/*banks=*/1);
    System sys(cfg);
    runFill(sys);

    const Profiler *p = sys.mc().profiler();
    ASSERT_NE(p, nullptr);
    double s = p->serialFraction();
    EXPECT_GE(s, 0.0);
    EXPECT_LE(s, 1.0);
    for (unsigned n : profile::amdahlShards) {
        double predicted = p->projectedSpeedup(n);
        EXPECT_DOUBLE_EQ(predicted, 1.0 / (s + (1.0 - s) / n));
        EXPECT_GE(predicted, 1.0);
        EXPECT_LE(predicted, static_cast<double>(n) + 1e-9);
    }
}

TEST(Profile, RankedBottlenecksAreSortedAndComplete)
{
    SimConfig cfg = profiledConfig();
    System sys(cfg);
    runFill(sys);

    const Profiler *p = sys.mc().profiler();
    ASSERT_NE(p, nullptr);
    std::vector<profile::Bottleneck> table = p->bottlenecks();
    ASSERT_EQ(table.size(), profile::numKinds - 1);
    Tick waits = 0;
    for (std::size_t i = 0; i < table.size(); ++i) {
        if (i)
            EXPECT_LE(table[i].waitTicks, table[i - 1].waitTicks);
        EXPECT_NE(table[i].kind, WaitKind::Service);
        waits += table[i].waitTicks;
    }
    Tick class_waits = 0;
    for (unsigned c = 0; c < profile::numClasses; ++c)
        class_waits +=
            p->classWaitTicks(static_cast<ReqClass>(c));
    EXPECT_EQ(waits, class_waits);
}

TEST(Profile, BenchCellsCarryProfileSnapshots)
{
    SimConfig cfg = profiledConfig();
    workloads::PmemkvConfig kv;
    kv.op = workloads::PmemkvOp::FillRandom;
    kv.numKeys = 128;
    kv.numOps = 128;
    kv.valueBytes = 64;
    bench::BenchRow row = bench::runRow(
        "kv",
        [kv]() {
            return std::make_unique<workloads::PmemkvWorkload>(kv);
        },
        {Scheme::FsEncr}, cfg);
    ASSERT_EQ(row.cells.size(), 1u);
    const bench::Cell &cell = row.cells.begin()->second;
    ASSERT_NE(cell.profile, nullptr);
    EXPECT_GT(cell.profile->requests(), 0u);
    EXPECT_EQ(cell.profile->identityViolations(), 0u);

    cfg.profile = false;
    bench::BenchRow off = bench::runRow(
        "kv",
        [kv]() {
            return std::make_unique<workloads::PmemkvWorkload>(kv);
        },
        {Scheme::FsEncr}, cfg);
    EXPECT_EQ(off.cells.begin()->second.profile, nullptr);
}

// ---------------------------------------------------------------------
// fsencr-compare integration: profiled sections gate, one-sided
// sections are structural errors
// ---------------------------------------------------------------------

namespace {

std::string
profiledReportJson(Tick service)
{
    std::ostringstream os;
    os << "{\"schema\": \"fsencr-run-report\", \"version\": 3, "
          "\"result\": {\"ticks\": 1000, \"nvm_reads\": 10, "
          "\"nvm_writes\": 20}, "
          "\"profile\": {\"requests\": 4, \"total_latency\": "
       << service + 100
       << ", \"identity_violations\": 0, \"classes\": {\"Data\": "
          "{\"service\": "
       << service
       << ", \"wait_bank\": 100, \"wait_total\": 100}}, "
          "\"amdahl\": {\"serial_fraction\": 0.25}}}";
    return os.str();
}

std::string
plainReportJson()
{
    return "{\"schema\": \"fsencr-run-report\", \"version\": 2, "
           "\"result\": {\"ticks\": 1000, \"nvm_reads\": 10, "
           "\"nvm_writes\": 20}}";
}

compare::Result
compareStrings(const std::string &base, const std::string &cur,
               const compare::Options &opt = {})
{
    json::Value b, c;
    EXPECT_TRUE(json::parse(base, b));
    EXPECT_TRUE(json::parse(cur, c));
    return compare::compareReports(b, c, opt);
}

} // namespace

TEST(ProfileCompare, IdenticalProfiledReportsAreClean)
{
    compare::Options strict;
    strict.relTolerance = 0.0;
    compare::Result r = compareStrings(profiledReportJson(900),
                                       profiledReportJson(900), strict);
    EXPECT_TRUE(r.ok()) << r.error;
    EXPECT_EQ(r.regressed, 0u);
}

TEST(ProfileCompare, ServiceGrowthRegresses)
{
    compare::Result r =
        compareStrings(profiledReportJson(900), profiledReportJson(1200));
    EXPECT_EQ(compare::exitCodeFor(r), 1);
    bool found = false;
    for (const compare::Delta &d : r.deltas)
        if (d.metric == "profile.Data.service" &&
            d.status == compare::Status::Regressed)
            found = true;
    EXPECT_TRUE(found);
}

TEST(ProfileCompare, OneSidedProfileSectionIsStructuralError)
{
    compare::Result r =
        compareStrings(profiledReportJson(900), plainReportJson());
    EXPECT_FALSE(r.error.empty());
    EXPECT_EQ(compare::exitCodeFor(r), 2);

    compare::Result r2 =
        compareStrings(plainReportJson(), profiledReportJson(900));
    EXPECT_FALSE(r2.error.empty());
}
