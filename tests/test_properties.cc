/**
 * @file
 * Property-based parameterized sweeps (TEST_P) over the simulator's
 * core invariants:
 *
 *  - CTR-pad uniqueness across the IV space
 *  - counter-block serialization round-trips for random contents
 *  - crash-anywhere recoverability: persisted data survives a crash
 *    injected after an arbitrary number of operations
 *  - Merkle tamper detection at arbitrary offsets
 *  - scheme ordering invariants across workload shapes
 *  - Osiris recovery across stop-loss configurations
 */

#include <gtest/gtest.h>

#include <cstring>

#include "crypto/ctr_mode.hh"
#include "crypto/key.hh"
#include "secmem/counter_block.hh"
#include "sim/system.hh"
#include "workloads/workload.hh"

using namespace fsencr;

// ---------------------------------------------------------------
// CTR pad uniqueness: for a grid of IV pairs differing in exactly
// one field, pads never collide.
// ---------------------------------------------------------------

class CtrPadUniqueness : public ::testing::TestWithParam<std::uint64_t>
{};

TEST_P(CtrPadUniqueness, NeighboringIvsNeverCollide)
{
    std::uint64_t seed = GetParam();
    Rng rng(seed);
    crypto::Aes128 aes(crypto::randomKey(rng));

    crypto::CtrIv base;
    base.pageId = rng.nextBounded(1u << 20);
    base.pageOffset = static_cast<std::uint32_t>(rng.nextBounded(64));
    base.major = rng.nextBounded(1u << 16);
    base.minor = static_cast<std::uint32_t>(rng.nextBounded(128));

    crypto::Line p0 = crypto::makeOtp(aes, base);
    for (unsigned delta = 1; delta <= 4; ++delta) {
        crypto::CtrIv iv = base;
        iv.minor = (base.minor + delta) % 128;
        if (iv.minor != base.minor)
            EXPECT_NE(p0, crypto::makeOtp(aes, iv));
        iv = base;
        iv.major = base.major + delta;
        EXPECT_NE(p0, crypto::makeOtp(aes, iv));
        iv = base;
        iv.pageId = base.pageId + delta;
        EXPECT_NE(p0, crypto::makeOtp(aes, iv));
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CtrPadUniqueness,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34,
                                           55, 89));

// ---------------------------------------------------------------
// Counter-block serialization round-trips.
// ---------------------------------------------------------------

class CounterBlockRoundTrip
    : public ::testing::TestWithParam<std::uint64_t>
{};

TEST_P(CounterBlockRoundTrip, MecbAndFecbSurviveSerialization)
{
    Rng rng(GetParam());
    Mecb m;
    m.major = rng.next();
    for (auto &v : m.minors.minor)
        v = static_cast<std::uint8_t>(rng.nextBounded(128));
    std::uint8_t line[blockSize];
    m.serialize(line);
    Mecb m2;
    m2.deserialize(line);
    EXPECT_EQ(m, m2);

    Fecb f;
    f.groupId =
        static_cast<std::uint32_t>(rng.nextBounded(1u << 18));
    f.fileId = static_cast<std::uint32_t>(rng.nextBounded(1u << 14));
    f.major = static_cast<std::uint32_t>(rng.next());
    for (auto &v : f.minors.minor)
        v = static_cast<std::uint8_t>(rng.nextBounded(128));
    f.serialize(line);
    Fecb f2;
    f2.deserialize(line);
    EXPECT_EQ(f, f2);
}

INSTANTIATE_TEST_SUITE_P(Seeds, CounterBlockRoundTrip,
                         ::testing::Range<std::uint64_t>(100, 120));

// ---------------------------------------------------------------
// Crash-anywhere recoverability: write N records with persist, crash,
// recover, verify all N.
// ---------------------------------------------------------------

struct CrashPoint
{
    Scheme scheme;
    unsigned records;
};

class CrashAnywhere : public ::testing::TestWithParam<CrashPoint>
{};

TEST_P(CrashAnywhere, PersistedRecordsAlwaysRecoverable)
{
    CrashPoint p = GetParam();
    SimConfig cfg;
    cfg.scheme = p.scheme;
    cfg.seed = 1000 + p.records;
    System sys(cfg);
    workloads::standardEnvironment(sys, "pw");

    int fd = sys.creat(0, "/pmem/f", 0600, OpenFlags::Encrypted, "pw");
    sys.ftruncate(0, fd, 1 << 20);
    Addr va = sys.mmapFile(0, fd, 1 << 20);

    for (unsigned i = 0; i < p.records; ++i) {
        sys.write<std::uint64_t>(0, va + i * 64,
                                 0xc0ffee00ull + i);
        sys.persist(0, va + i * 64, 8);
    }
    sys.crash();
    ASSERT_TRUE(sys.recover());
    for (unsigned i = 0; i < p.records; ++i)
        EXPECT_EQ(sys.read<std::uint64_t>(0, va + i * 64),
                  0xc0ffee00ull + i)
            << "record " << i;
}

INSTANTIATE_TEST_SUITE_P(
    Grid, CrashAnywhere,
    ::testing::Values(CrashPoint{Scheme::FsEncr, 1},
                      CrashPoint{Scheme::FsEncr, 7},
                      CrashPoint{Scheme::FsEncr, 63},
                      CrashPoint{Scheme::FsEncr, 200},
                      CrashPoint{Scheme::BaselineSecurity, 1},
                      CrashPoint{Scheme::BaselineSecurity, 63},
                      CrashPoint{Scheme::BaselineSecurity, 200}));

// ---------------------------------------------------------------
// Repeated-write recoverability: the same line rewritten k times, for
// k spanning stop-loss and minor-overflow boundaries.
// ---------------------------------------------------------------

class RewriteRecovery : public ::testing::TestWithParam<unsigned>
{};

TEST_P(RewriteRecovery, LastPersistedVersionSurvives)
{
    unsigned k = GetParam();
    SimConfig cfg;
    cfg.scheme = Scheme::FsEncr;
    System sys(cfg);
    workloads::standardEnvironment(sys, "pw");
    int fd = sys.creat(0, "/pmem/f", 0600, OpenFlags::Encrypted, "pw");
    sys.ftruncate(0, fd, pageSize);
    Addr va = sys.mmapFile(0, fd, pageSize);

    for (unsigned i = 1; i <= k; ++i) {
        sys.write<std::uint64_t>(0, va, i);
        sys.persist(0, va, 8);
    }
    sys.crash();
    ASSERT_TRUE(sys.recover()) << "k=" << k;
    EXPECT_EQ(sys.read<std::uint64_t>(0, va), k);
}

INSTANTIATE_TEST_SUITE_P(Counts, RewriteRecovery,
                         ::testing::Values(1, 3, 4, 5, 15, 16, 17, 64,
                                           127, 128, 129, 260));

// ---------------------------------------------------------------
// Merkle tamper detection at arbitrary byte offsets of a persisted
// counter block.
// ---------------------------------------------------------------

class TamperDetection : public ::testing::TestWithParam<unsigned>
{};

TEST_P(TamperDetection, AnyFlippedByteIsCaught)
{
    unsigned byte = GetParam();
    SimConfig cfg;
    cfg.scheme = Scheme::BaselineSecurity;
    System sys(cfg);
    workloads::standardEnvironment(sys, "pw");
    int fd = sys.creat(0, "/pmem/f", 0600, OpenFlags::Encrypted, "pw");
    sys.ftruncate(0, fd, pageSize);
    Addr va = sys.mmapFile(0, fd, pageSize);
    for (int i = 0; i < 8; ++i) {
        sys.write<std::uint64_t>(0, va, i);
        sys.persist(0, va, 8);
    }
    sys.crash(); // drop the cached counter copy

    auto ino = sys.fs().lookup("/pmem/f");
    Addr page = sys.fs().inode(*ino).blocks[0];
    Addr mecb = sys.layout().mecbAddr(page);
    std::uint8_t blk[blockSize];
    sys.device().readLine(mecb, blk);
    blk[byte] ^= 0x01;
    sys.device().writeLine(mecb, blk);

    EXPECT_FALSE(sys.mc().recoverMetadata());
}

INSTANTIATE_TEST_SUITE_P(Offsets, TamperDetection,
                         ::testing::Values(0, 1, 7, 8, 9, 31, 32, 63));

// ---------------------------------------------------------------
// Scheme-ordering invariant across workload shapes.
// ---------------------------------------------------------------

struct AccessPattern
{
    const char *name;
    std::uint64_t stride;
    bool writes;
};

class SchemeOrdering : public ::testing::TestWithParam<AccessPattern>
{};

TEST_P(SchemeOrdering, EncryptionNeverSpeedsThingsUp)
{
    AccessPattern p = GetParam();
    auto run = [&](Scheme scheme) {
        SimConfig cfg;
        cfg.scheme = scheme;
        System sys(cfg);
        workloads::standardEnvironment(sys, "pw");
        int fd = sys.creat(0, "/pmem/w", 0600, OpenFlags::Encrypted, "pw");
        std::uint64_t span = 2 << 20;
        sys.ftruncate(0, fd, span);
        Addr va = sys.mmapFile(0, fd, span);
        sys.beginMeasurement();
        for (Addr off = 0; off < span; off += p.stride) {
            if (p.writes && ((off / p.stride) & 1)) {
                std::uint8_t v = 1;
                sys.store(0, va + off, &v, 1);
            } else {
                std::uint8_t v;
                sys.load(0, va + off, &v, 1);
            }
        }
        if (p.writes)
            sys.persist(0, va, blockSize); // at least one persist
        return sys.measuredTicks();
    };

    Tick none = run(Scheme::NoEncryption);
    Tick base = run(Scheme::BaselineSecurity);
    Tick fsenc = run(Scheme::FsEncr);
    EXPECT_LE(none, base) << p.name;
    EXPECT_LE(base, fsenc) << p.name;
    // FsEncr stays within a 1.35x envelope of the baseline on every
    // pattern (the paper's worst micro-benchmarks sit near 1.2-1.3).
    EXPECT_LT(static_cast<double>(fsenc) / base, 1.35) << p.name;
}

INSTANTIATE_TEST_SUITE_P(
    Patterns, SchemeOrdering,
    ::testing::Values(AccessPattern{"seq-read-16", 16, false},
                      AccessPattern{"seq-mixed-16", 16, true},
                      AccessPattern{"seq-read-128", 128, false},
                      AccessPattern{"seq-mixed-128", 128, true},
                      AccessPattern{"page-stride", 4096, true}));

// ---------------------------------------------------------------
// Osiris across stop-loss configurations.
// ---------------------------------------------------------------

class StopLossSweep : public ::testing::TestWithParam<unsigned>
{};

TEST_P(StopLossSweep, RecoveryHoldsAtAnyStopLoss)
{
    SimConfig cfg;
    cfg.scheme = Scheme::FsEncr;
    cfg.sec.osirisStopLoss = GetParam();
    System sys(cfg);
    workloads::standardEnvironment(sys, "pw");
    int fd = sys.creat(0, "/pmem/f", 0600, OpenFlags::Encrypted, "pw");
    sys.ftruncate(0, fd, pageSize);
    Addr va = sys.mmapFile(0, fd, pageSize);

    for (unsigned i = 1; i <= 23; ++i) {
        sys.write<std::uint64_t>(0, va + (i % 8) * 64, i);
        sys.persist(0, va + (i % 8) * 64, 8);
    }
    sys.crash();
    ASSERT_TRUE(sys.recover());
    for (unsigned i = 16; i <= 23; ++i)
        EXPECT_EQ(sys.read<std::uint64_t>(0, va + (i % 8) * 64), i);
}

INSTANTIATE_TEST_SUITE_P(StopLoss, StopLossSweep,
                         ::testing::Values(0, 1, 2, 4, 8, 16));

// ---------------------------------------------------------------
// Functional encryption round-trip for arbitrary data sizes crossing
// line and page boundaries.
// ---------------------------------------------------------------

class SizesRoundTrip : public ::testing::TestWithParam<std::size_t>
{};

TEST_P(SizesRoundTrip, StoreLoadAnySize)
{
    std::size_t n = GetParam();
    SimConfig cfg;
    cfg.scheme = Scheme::FsEncr;
    System sys(cfg);
    workloads::standardEnvironment(sys, "pw");
    int fd = sys.creat(0, "/pmem/f", 0600, OpenFlags::Encrypted, "pw");
    sys.ftruncate(0, fd, roundUp(n + 200, pageSize));
    Addr va = sys.mmapFile(0, fd, roundUp(n + 200, pageSize));

    std::vector<std::uint8_t> data(n), out(n);
    Rng rng(n);
    rng.fill(data.data(), n);
    // Offset 37: deliberately misaligned.
    sys.store(0, va + 37, data.data(), n);
    sys.persist(0, va + 37, n);
    sys.load(0, va + 37, out.data(), n);
    EXPECT_EQ(out, data);
}

INSTANTIATE_TEST_SUITE_P(Sizes, SizesRoundTrip,
                         ::testing::Values(1, 7, 63, 64, 65, 100, 4095,
                                           4096, 4097, 10000));
