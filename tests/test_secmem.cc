/**
 * @file
 * Security-metadata tests: counter-block packing, Merkle tree
 * integrity, counter store persistence, Osiris recovery primitives.
 */

#include <gtest/gtest.h>

#include <cstring>

#include "common/rng.hh"
#include "mem/nvm_device.hh"
#include "mem/phys_layout.hh"
#include "secmem/counter_block.hh"
#include "secmem/counter_store.hh"
#include "secmem/merkle_tree.hh"
#include "secmem/osiris.hh"
#include "crypto/ctr_mode.hh"
#include "crypto/key.hh"

using namespace fsencr;

TEST(MinorCounters, PackUnpackRoundTrip)
{
    Rng rng(1);
    for (int trial = 0; trial < 20; ++trial) {
        MinorCounters m;
        for (auto &v : m.minor)
            v = static_cast<std::uint8_t>(rng.nextBounded(128));
        std::uint8_t buf[56];
        m.pack(buf);
        MinorCounters out;
        out.unpack(buf);
        EXPECT_EQ(out, m);
    }
}

TEST(MinorCounters, PackIsDense)
{
    // All-max counters use every bit.
    MinorCounters m;
    for (auto &v : m.minor)
        v = 127;
    std::uint8_t buf[56];
    m.pack(buf);
    for (auto b : buf)
        EXPECT_EQ(b, 0xff);
}

TEST(Mecb, SerializeFitsOneLine)
{
    Mecb blk;
    blk.major = 0x1122334455667788ull;
    blk.minors.minor[0] = 5;
    blk.minors.minor[63] = 127;
    std::uint8_t line[blockSize];
    blk.serialize(line);
    Mecb out;
    out.deserialize(line);
    EXPECT_EQ(out, blk);
}

TEST(Fecb, SerializeRoundTripWithIds)
{
    Fecb blk;
    blk.groupId = 0x3ffff; // 18 bits, all set
    blk.fileId = 0x3fff;   // 14 bits, all set
    blk.major = 0xdeadbeef;
    blk.minors.minor[17] = 99;
    std::uint8_t line[blockSize];
    blk.serialize(line);
    Fecb out;
    out.deserialize(line);
    EXPECT_EQ(out, blk);
}

TEST(Fecb, IdsAreMasked)
{
    Fecb blk;
    blk.groupId = 0xfffff;  // over 18 bits
    blk.fileId = 0xffff;    // over 14 bits
    std::uint8_t line[blockSize];
    blk.serialize(line);
    Fecb out;
    out.deserialize(line);
    EXPECT_EQ(out.groupId, 0x3ffffu);
    EXPECT_EQ(out.fileId, 0x3fffu);
}

namespace {

struct MerkleFixture : ::testing::Test
{
    MerkleFixture()
        : layout(LayoutParams{}), device(PcmParams{}),
          tree(layout, device, 8)
    {}

    PhysLayout layout;
    NvmDevice device;
    MerkleTree tree;
};

} // namespace

TEST_F(MerkleFixture, NineLevelsAtDefaultGeometry)
{
    // Table III: 9 levels, 8-ary.
    EXPECT_EQ(tree.numLevels(), 9u);
}

TEST_F(MerkleFixture, UpdateChangesRoot)
{
    Addr leaf = layout.merkleLeavesBase();
    std::uint64_t root0 = tree.root();
    std::uint8_t line[blockSize] = {1, 2, 3};
    device.writeLine(leaf, line);
    tree.updateLeaf(leaf);
    EXPECT_NE(tree.root(), root0);
}

TEST_F(MerkleFixture, VerifyAcceptsHonestLeaf)
{
    Addr leaf = layout.merkleLeavesBase() + 5 * blockSize;
    std::uint8_t line[blockSize] = {9};
    device.writeLine(leaf, line);
    tree.updateLeaf(leaf);
    EXPECT_TRUE(tree.verifyLeaf(leaf));
}

TEST_F(MerkleFixture, DetectsTampering)
{
    Addr leaf = layout.merkleLeavesBase() + 64 * blockSize;
    std::uint8_t line[blockSize] = {1};
    device.writeLine(leaf, line);
    tree.updateLeaf(leaf);

    // Attacker flips a byte in NVM behind the controller's back.
    line[3] ^= 0x80;
    device.writeLine(leaf, line);
    EXPECT_FALSE(tree.verifyLeaf(leaf));
}

TEST_F(MerkleFixture, DetectsReplay)
{
    Addr leaf = layout.merkleLeavesBase() + 7 * blockSize;
    std::uint8_t v1[blockSize] = {1};
    std::uint8_t v2[blockSize] = {2};
    device.writeLine(leaf, v1);
    tree.updateLeaf(leaf);
    device.writeLine(leaf, v2);
    tree.updateLeaf(leaf);

    // Replay the old value.
    device.writeLine(leaf, v1);
    EXPECT_FALSE(tree.verifyLeaf(leaf));
}

TEST_F(MerkleFixture, VirginLeafVerifiesAsZero)
{
    Addr leaf = layout.merkleLeavesBase() + 1000 * blockSize;
    EXPECT_TRUE(tree.verifyLeaf(leaf));
    // ...but tampered virgin metadata is caught.
    std::uint8_t junk[blockSize] = {0xff};
    device.writeLine(leaf, junk);
    EXPECT_FALSE(tree.verifyLeaf(leaf));
}

TEST_F(MerkleFixture, RebuildVerifiesAfterHonestPersist)
{
    for (int i = 0; i < 32; ++i) {
        Addr leaf = layout.merkleLeavesBase() + i * blockSize;
        std::uint8_t line[blockSize];
        line[0] = static_cast<std::uint8_t>(i);
        device.writeLine(leaf, line);
        tree.updateLeaf(leaf);
    }
    EXPECT_TRUE(tree.rebuildAndVerify());
}

TEST_F(MerkleFixture, RebuildCatchesOfflineTampering)
{
    Addr leaf = layout.merkleLeavesBase() + 3 * blockSize;
    std::uint8_t line[blockSize] = {5};
    device.writeLine(leaf, line);
    tree.updateLeaf(leaf);

    // Power-off tampering: flip bits, then "reboot".
    line[0] ^= 0xff;
    device.writeLine(leaf, line);
    EXPECT_FALSE(tree.rebuildAndVerify());
}

TEST_F(MerkleFixture, AncestorAddressesAreWithinNodeRegion)
{
    Addr leaf = layout.merkleLeavesBase() + 12345 * blockSize;
    for (unsigned level = 1; level < tree.numLevels(); ++level) {
        Addr node = tree.ancestorAddr(leaf, level);
        EXPECT_GE(node, layout.merkleNodeBase());
        EXPECT_LT(node, layout.pmemBase());
    }
}

TEST_F(MerkleFixture, SiblingsShareParent)
{
    Addr a = layout.merkleLeavesBase();
    Addr b = a + 7 * blockSize;  // same 8-ary group
    Addr c = a + 8 * blockSize;  // next group
    EXPECT_EQ(tree.ancestorAddr(a, 1), tree.ancestorAddr(b, 1));
    EXPECT_NE(tree.ancestorAddr(a, 1), tree.ancestorAddr(c, 1));
}

namespace {

struct CounterStoreFixture : ::testing::Test
{
    CounterStoreFixture()
        : layout(LayoutParams{}), device(PcmParams{}),
          tree(layout, device, 8), store(device, tree)
    {}

    PhysLayout layout;
    NvmDevice device;
    MerkleTree tree;
    CounterStore store;
};

} // namespace

TEST_F(CounterStoreFixture, FreshBlockIsZero)
{
    Addr a = layout.mecbAddr(0x5000);
    Mecb &m = store.mecb(a);
    EXPECT_EQ(m.major, 0u);
    for (auto v : m.minors.minor)
        EXPECT_EQ(v, 0);
}

TEST_F(CounterStoreFixture, PersistSurvivesCrash)
{
    Addr a = layout.mecbAddr(0x5000);
    store.mecb(a).minors.minor[3] = 42;
    store.mecb(a).major = 7;
    store.persistMecb(a);
    store.crash();

    Mecb recovered = store.persistedMecb(a);
    EXPECT_EQ(recovered.major, 7u);
    EXPECT_EQ(recovered.minors.minor[3], 42);
    // The working copy reloads from the persisted image.
    EXPECT_EQ(store.mecb(a).major, 7u);
}

TEST_F(CounterStoreFixture, UnpersistedUpdateLostOnCrash)
{
    Addr a = layout.mecbAddr(0x9000);
    store.mecb(a).minors.minor[0] = 99;
    store.crash();
    EXPECT_EQ(store.mecb(a).minors.minor[0], 0);
}

TEST_F(CounterStoreFixture, EvictPersistsDirty)
{
    Addr a = layout.mecbAddr(0xa000);
    store.mecb(a).minors.minor[1] = 11;
    store.evictMecb(a, /*dirty=*/true);
    EXPECT_FALSE(store.residentMecb(a));
    EXPECT_EQ(store.persistedMecb(a).minors.minor[1], 11);
}

TEST_F(CounterStoreFixture, CleanEvictSkipsPersist)
{
    Addr a = layout.mecbAddr(0xb000);
    store.mecb(a); // load only
    std::uint64_t persists_before =
        store.statGroup().scalarValue("mecbPersists");
    store.evictMecb(a, /*dirty=*/false);
    EXPECT_EQ(store.statGroup().scalarValue("mecbPersists"),
              persists_before);
}

TEST_F(CounterStoreFixture, FecbPersistRoundTrip)
{
    Addr page = layout.pmemBase() + 3 * pageSize;
    Addr fa = layout.fecbAddr(page);
    Fecb &f = store.fecb(fa);
    f.groupId = 100;
    f.fileId = 42;
    f.minors.minor[5] = 3;
    store.persistFecb(fa);
    store.crash();
    Fecb recovered = store.persistedFecb(fa);
    EXPECT_EQ(recovered.groupId, 100u);
    EXPECT_EQ(recovered.fileId, 42u);
    EXPECT_EQ(recovered.minors.minor[5], 3);
}

TEST_F(CounterStoreFixture, PersistUpdatesMerkle)
{
    Addr a = layout.mecbAddr(0xc000);
    std::uint64_t root0 = tree.root();
    store.mecb(a).major = 1;
    store.persistMecb(a);
    EXPECT_NE(tree.root(), root0);
    EXPECT_TRUE(tree.verifyLeaf(a));
}

TEST(Osiris, EccBindsPlaintextAndAddress)
{
    std::uint8_t p1[blockSize] = {1};
    std::uint8_t p2[blockSize] = {2};
    EXPECT_NE(OsirisRecovery::eccOf(p1, 0x1000),
              OsirisRecovery::eccOf(p2, 0x1000));
    EXPECT_NE(OsirisRecovery::eccOf(p1, 0x1000),
              OsirisRecovery::eccOf(p1, 0x2000));
}

TEST(Osiris, StopLossBoundary)
{
    OsirisRecovery o(4);
    EXPECT_TRUE(o.atStopLoss(4));
    EXPECT_TRUE(o.atStopLoss(8));
    EXPECT_FALSE(o.atStopLoss(5));
    OsirisRecovery strict(0);
    EXPECT_TRUE(strict.atStopLoss(1)); // strict persistence mode
}

TEST(Osiris, RecoversLaggingCounter)
{
    // Simulate: persisted minor = 4, true minor = 6 (lag 2 <= 4).
    OsirisRecovery o(4);
    Rng rng(3);
    crypto::Aes128 aes(crypto::randomKey(rng));
    Addr line = 0x4000;

    std::uint8_t plain[blockSize];
    rng.fill(plain, sizeof(plain));
    std::uint32_t true_minor = 6;

    // "Device" holds ciphertext under the true counter.
    std::uint8_t cipher[blockSize];
    std::memcpy(cipher, plain, blockSize);
    crypto::Line pad =
        crypto::makeOtp(aes, {pageNumber(line), blockInPage(line), 0,
                              true_minor});
    crypto::xorLine(cipher, pad);
    std::uint32_t ecc = OsirisRecovery::eccOf(plain, line);

    auto trial = [&](std::uint32_t cand, std::uint8_t *out) {
        std::memcpy(out, cipher, blockSize);
        crypto::Line p = crypto::makeOtp(
            aes, {pageNumber(line), blockInPage(line), 0, cand});
        crypto::xorLine(out, p);
    };

    auto rec = o.recoverMinor(4, ecc, trial, line);
    ASSERT_TRUE(rec.has_value());
    EXPECT_EQ(*rec, true_minor);
}

TEST(Osiris, FailsBeyondStopLoss)
{
    OsirisRecovery o(2);
    Rng rng(4);
    crypto::Aes128 aes(crypto::randomKey(rng));
    Addr line = 0x8000;

    std::uint8_t plain[blockSize];
    rng.fill(plain, sizeof(plain));
    std::uint8_t cipher[blockSize];
    std::memcpy(cipher, plain, blockSize);
    crypto::Line pad = crypto::makeOtp(
        aes, {pageNumber(line), blockInPage(line), 0, 10});
    crypto::xorLine(cipher, pad);
    std::uint32_t ecc = OsirisRecovery::eccOf(plain, line);

    auto trial = [&](std::uint32_t cand, std::uint8_t *out) {
        std::memcpy(out, cipher, blockSize);
        crypto::Line p = crypto::makeOtp(
            aes, {pageNumber(line), blockInPage(line), 0, cand});
        crypto::xorLine(out, p);
    };

    // Persisted counter lags by 7 > stop-loss 2: unrecoverable, as the
    // stop-loss invariant promises this can never happen in operation.
    auto rec = o.recoverMinor(3, ecc, trial, line);
    EXPECT_FALSE(rec.has_value());
}
