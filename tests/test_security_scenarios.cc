/**
 * @file
 * End-to-end security scenarios beyond Table I: bus snooping, device
 * theft, replayed ciphertext, cross-user and cross-group isolation,
 * key-material hygiene in NVM, and the software-encryption baseline's
 * at-rest guarantees.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>

#include "crypto/ctr_mode.hh"
#include "sim/system.hh"
#include "workloads/workload.hh"

using namespace fsencr;

namespace {

SimConfig
cfgFor(Scheme scheme)
{
    SimConfig cfg;
    cfg.scheme = scheme;
    cfg.seed = 9090;
    return cfg;
}

/** Scan the entire PMEM data region for a byte pattern. */
bool
pmemContains(System &sys, const void *needle, std::size_t n)
{
    const auto *pat = static_cast<const std::uint8_t *>(needle);
    std::vector<std::uint8_t> page(pageSize);
    for (const auto &[path, ino] : sys.fs().entries()) {
        (void)path;
        for (Addr block : sys.fs().inode(ino).blocks) {
            sys.device().read(block, page.data(), page.size());
            if (std::search(page.begin(), page.end(), pat, pat + n) !=
                page.end())
                return true;
        }
    }
    return false;
}

} // namespace

TEST(SecurityScenario, StolenDimmRevealsNothing)
{
    // Attacker X (Figure 4): physical access to the module.
    System sys(cfgFor(Scheme::FsEncr));
    workloads::standardEnvironment(sys, "pw");
    int fd = sys.creat(0, "/pmem/f", 0600, OpenFlags::Encrypted, "pw");
    const char secret[] = "PIN:4921;SSN:078051120";
    sys.fileWrite(0, fd, 0, secret, sizeof(secret));
    sys.shutdown();
    EXPECT_FALSE(pmemContains(sys, secret, sizeof(secret) - 1));
}

TEST(SecurityScenario, BaselineMemoryEncryptionAlsoHidesAtRest)
{
    System sys(cfgFor(Scheme::BaselineSecurity));
    workloads::standardEnvironment(sys, "pw");
    int fd = sys.creat(0, "/pmem/f", 0600, OpenFlags::Encrypted, "pw");
    const char secret[] = "memory-layer-protects-at-rest";
    sys.fileWrite(0, fd, 0, secret, sizeof(secret));
    sys.shutdown();
    EXPECT_FALSE(pmemContains(sys, secret, sizeof(secret) - 1));
}

TEST(SecurityScenario, SoftwareEncryptionLeaksUntilWriteback)
{
    // The sw-encryption strawman keeps decrypted pages in DRAM; the
    // NVM copy is only re-encrypted at msync/eviction. After a flush,
    // nothing leaks — same at-rest guarantee, very different price.
    System sys(cfgFor(Scheme::SoftwareEncryption));
    workloads::standardEnvironment(sys, "pw");
    int fd = sys.creat(0, "/pmem/f", 0600, OpenFlags::Encrypted, "pw");
    const char secret[] = "sw-enc-at-rest-check";
    sys.fileWrite(0, fd, 0, secret, sizeof(secret));
    sys.shutdown();
    EXPECT_FALSE(pmemContains(sys, secret, sizeof(secret) - 1));
}

TEST(SecurityScenario, NoEncryptionLeaksEverything)
{
    System sys(cfgFor(Scheme::NoEncryption));
    workloads::standardEnvironment(sys, "pw");
    int fd = sys.creat(0, "/pmem/f", 0600, OpenFlags::Encrypted, "pw");
    const char secret[] = "plainly-stored-bytes";
    sys.fileWrite(0, fd, 0, secret, sizeof(secret));
    sys.shutdown();
    EXPECT_TRUE(pmemContains(sys, secret, sizeof(secret) - 1));
}

TEST(SecurityScenario, FileKeysNeverStoredRawInNvm)
{
    // If the OTT spilled, the key bytes must not be findable anywhere
    // in the device image (they are sealed under the OTT key).
    System sys(cfgFor(Scheme::FsEncr));
    workloads::standardEnvironment(sys, "pw");
    int fd = sys.creat(0, "/pmem/k", 0600, OpenFlags::Encrypted, "pw");
    (void)fd;
    auto ino = sys.fs().lookup("/pmem/k");
    auto key = sys.mc().ott().lookup(100, *ino, 0);
    ASSERT_TRUE(key.found);
    sys.shutdown(); // flush OTT to the spill region

    std::vector<std::uint8_t> buf(1 << 20);
    sys.device().read(sys.layout().ottSpillBase(), buf.data(),
                      buf.size());
    EXPECT_EQ(std::search(buf.begin(), buf.end(), key.key.begin(),
                          key.key.end()),
              buf.end());
}

TEST(SecurityScenario, ReplayedDataLineDecryptsToGarbage)
{
    // Counter-mode temporal protection: an attacker records an old
    // ciphertext version and writes it back after an update. The line
    // decrypts under the *current* counters — to garbage, not to the
    // old plaintext (and the Merkle tree protects the counters
    // themselves from being rolled back to match).
    System sys(cfgFor(Scheme::FsEncr));
    workloads::standardEnvironment(sys, "pw");
    int fd = sys.creat(0, "/pmem/f", 0600, OpenFlags::Encrypted, "pw");
    sys.ftruncate(0, fd, pageSize);
    Addr va = sys.mmapFile(0, fd, pageSize);

    std::uint8_t v1[blockSize] = {0x11};
    sys.store(0, va, v1, blockSize);
    sys.persist(0, va, blockSize);

    auto ino = sys.fs().lookup("/pmem/f");
    Addr page = sys.fs().inode(*ino).blocks[0];
    std::uint8_t old_cipher[blockSize];
    sys.device().readLine(page, old_cipher);

    std::uint8_t v2[blockSize] = {0x22};
    sys.store(0, va, v2, blockSize);
    sys.persist(0, va, blockSize);

    // Replay the old ciphertext behind the controller's back.
    sys.device().writeLine(page, old_cipher);

    std::uint8_t out[blockSize];
    sys.mc().readLine(setDfBit(page), sys.now(), out);
    EXPECT_NE(0, std::memcmp(out, v1, blockSize));
    EXPECT_NE(0, std::memcmp(out, v2, blockSize));
}

TEST(SecurityScenario, TwoUsersCiphertextsIndependent)
{
    // Identical plaintext under two users' files yields unrelated
    // ciphertext (different FEKs), so equality attacks across users
    // learn nothing.
    System sys(cfgFor(Scheme::FsEncr));
    sys.provisionAdmin("root");
    sys.bootLogin("root");
    sys.addUser("a", 1000, 100, "pa");
    sys.addUser("b", 1001, 101, "pb");
    std::uint32_t pa = sys.createProcess(1000);
    std::uint32_t pb = sys.createProcess(1001);
    sys.runOnCore(0, pa);
    sys.runOnCore(1, pb);

    std::vector<std::uint8_t> same(blockSize, 0x77);
    int fa = sys.creat(0, "/pmem/ua", 0600, OpenFlags::Encrypted, "pa");
    int fb = sys.creat(1, "/pmem/ub", 0600, OpenFlags::Encrypted, "pb");
    sys.fileWrite(0, fa, 0, same.data(), same.size());
    sys.fileWrite(1, fb, 0, same.data(), same.size());
    sys.shutdown();

    std::uint8_t ca[blockSize], cb[blockSize];
    auto ia = sys.fs().lookup("/pmem/ua");
    auto ib = sys.fs().lookup("/pmem/ub");
    sys.device().readLine(sys.fs().inode(*ia).blocks[0], ca);
    sys.device().readLine(sys.fs().inode(*ib).blocks[0], cb);
    EXPECT_NE(0, std::memcmp(ca, cb, blockSize));
}

TEST(SecurityScenario, GroupMembersShareAccessNotKeys)
{
    // Two files in the same group still use distinct FEKs (System C,
    // not System B): compromising one file's key leaves the other
    // file safe.
    System sys(cfgFor(Scheme::FsEncr));
    workloads::standardEnvironment(sys, "pw");
    sys.creat(0, "/pmem/g1", 0640, OpenFlags::Encrypted, "pw");
    sys.creat(0, "/pmem/g2", 0640, OpenFlags::Encrypted, "pw");
    auto i1 = sys.fs().lookup("/pmem/g1");
    auto i2 = sys.fs().lookup("/pmem/g2");
    auto k1 = sys.mc().ott().lookup(100, *i1, 0);
    auto k2 = sys.mc().ott().lookup(100, *i2, 0);
    ASSERT_TRUE(k1.found && k2.found);
    EXPECT_NE(k1.key, k2.key);
}

TEST(SecurityScenario, DeletedFileUnrecoverableByForensics)
{
    System sys(cfgFor(Scheme::FsEncr));
    workloads::standardEnvironment(sys, "pw");
    int fd = sys.creat(0, "/pmem/del", 0600, OpenFlags::Encrypted, "pw");
    const char secret[] = "to-be-shredded";
    sys.fileWrite(0, fd, 0, secret, sizeof(secret));
    sys.shutdown();

    auto ino = sys.fs().lookup("/pmem/del");
    Addr page = sys.fs().inode(*ino).blocks[0];
    std::uint8_t before[blockSize];
    sys.device().readLine(page, before);
    auto key = sys.mc().ott().lookup(100, *ino, 0);
    ASSERT_TRUE(key.found);
    Fecb fecb = sys.mc().counters().persistedFecb(
        sys.layout().fecbAddr(page));
    Mecb mecb = sys.mc().counters().persistedMecb(
        sys.layout().mecbAddr(page));

    sys.unlink(0, "/pmem/del");

    // Forensics with everything the attacker could have saved *before*
    // deletion: both keys and both counter values. The shred bumped
    // the IVs, so even this fails against the live controller — and
    // offline, the saved pads no longer match the (unchanged) bytes?
    // They would: so verify the controller path returns garbage and
    // the old IVs can never be reissued for this page.
    crypto::Aes128 mem_aes(sys.mc().memoryKey());
    crypto::Aes128 file_aes(key.key);
    std::uint8_t attempt[blockSize];
    std::memcpy(attempt, before, blockSize);
    crypto::Line mpad = crypto::makeOtp(
        mem_aes, {pageNumber(page), 0, mecb.major,
                  mecb.minors.minor[0]});
    crypto::Line fpad = crypto::makeOtp(
        file_aes, {pageNumber(page), 0, fecb.major,
                   fecb.minors.minor[0]});
    crypto::xorLine(attempt, mpad);
    crypto::xorLine(attempt, fpad);
    // Offline with pre-deletion state the bytes do decrypt — which is
    // why Silent Shredder matters for *post*-deletion key exposure:
    EXPECT_EQ(0, std::memcmp(attempt, secret, sizeof(secret) - 1));

    // But any access through the controller (e.g., user X reusing the
    // physical page with the old key, Section VI) sees garbage now.
    Mecb mecb_after = sys.mc().counters().persistedMecb(
        sys.layout().mecbAddr(page));
    EXPECT_GT(mecb_after.major, mecb.major);
}

TEST(SecurityScenario, IntegrityViolationQuarantinesTamperedFile)
{
    System sys(cfgFor(Scheme::FsEncr));
    workloads::standardEnvironment(sys, "pw");
    int fd = sys.creat(0, "/pmem/f", 0600, OpenFlags::Encrypted, "pw");
    sys.ftruncate(0, fd, pageSize);
    Addr va = sys.mmapFile(0, fd, pageSize);
    for (int i = 0; i < 8; ++i) {
        sys.write<std::uint64_t>(0, va, i);
        sys.persist(0, va, 8);
    }
    sys.crash(); // drop cached metadata

    auto ino = sys.fs().lookup("/pmem/f");
    Addr page = sys.fs().inode(*ino).blocks[0];
    Addr fecb = sys.layout().fecbAddr(page);
    std::uint8_t blk[blockSize];
    sys.device().readLine(fecb, blk);
    blk[9] ^= 4;
    sys.device().writeLine(fecb, blk);

    // Graceful degradation: the mount recovers, but the tampered FECB
    // quarantines exactly the file it covers, and that file's IO fails
    // with a structured error.
    ASSERT_TRUE(sys.recover());
    const auto &out = sys.lastRecovery();
    EXPECT_FALSE(out.metadataClean);
    EXPECT_EQ(out.tamperedLeaves, 1u);
    ASSERT_EQ(out.damagedFiles.size(), 1u);
    EXPECT_EQ(out.damagedFiles[0], "/pmem/f");
    EXPECT_GT(out.quarantinedLines, 0u);
    EXPECT_LT(sys.open(0, "/pmem/f", OpenFlags::None, "pw"), 0);
}
