/**
 * @file
 * Sharded secure-datapath tests: `--mc-shards 1` must stay
 * bit-identical to the single-controller model (same golden ticks,
 * no shards stat group), every fixed shard count must be
 * byte-deterministic across runs, the epoch-reconciled shard clocks
 * must satisfy their aggregate invariants, crash recovery must
 * quarantine only the damaged shard's lines, and the ride-alongs
 * (audit + eADR) must compose with sharding.
 */

#include <gtest/gtest.h>

#include <cstring>
#include <memory>
#include <sstream>
#include <string>

#include "common/config.hh"
#include "fault/fault_injector.hh"
#include "fsenc/audit_log.hh"
#include "fsenc/mc_router.hh"
#include "sim/system.hh"
#include "workloads/dax_micro.hh"
#include "workloads/pmemkv_bench.hh"
#include "workloads/workload.hh"

using namespace fsencr;

namespace {

SimConfig
shardedConfig(Scheme scheme, unsigned shards, unsigned banks = 1)
{
    SimConfig cfg;
    cfg.scheme = scheme;
    cfg.pcm.mcShards = shards;
    cfg.pcm.mcBanks = banks;
    return cfg;
}

workloads::WorkloadResult
runDax1(System &sys)
{
    workloads::DaxMicroConfig c;
    c.kind = workloads::DaxMicroKind::Dax1;
    c.spanBytes = 256 << 10;
    workloads::DaxMicroWorkload w(c);
    return workloads::runWorkload(sys, w);
}

workloads::WorkloadResult
runFill(System &sys)
{
    workloads::PmemkvConfig kv;
    kv.op = workloads::PmemkvOp::FillRandom;
    kv.numKeys = 256;
    kv.numOps = 256;
    kv.valueBytes = 64;
    workloads::PmemkvWorkload w(kv);
    return workloads::runWorkload(sys, w);
}

std::string
statsOf(System &sys)
{
    std::ostringstream os;
    sys.dumpStats(os);
    return os.str();
}

} // namespace

/**
 * `--mc-shards 1` is the single-controller model bit for bit: the
 * same golden ticks the banked-timing suite pins (captured before
 * sharding existed), no shards stat group, and the controller is
 * named "mc", not "mc0".
 */
TEST(Sharding, ShardsOneGoldenTicks)
{
    System sys(shardedConfig(Scheme::FsEncr, 1));
    EXPECT_EQ(sys.router().shardCount(), 1u);
    workloads::WorkloadResult r = runDax1(sys);
    EXPECT_EQ(r.ticks, 547121500u);
    EXPECT_EQ(r.nvmReads, 4248u);
    EXPECT_EQ(r.nvmWrites, 0u);
    std::string stats = statsOf(sys);
    EXPECT_EQ(stats.find("system.shards."), std::string::npos);
    EXPECT_NE(stats.find("system.mc."), std::string::npos);
    EXPECT_EQ(stats.find("system.mc0."), std::string::npos);
}

/** Sharded runs rename the shard groups mc0..mcN-1 and expose the
 *  reconciliation aggregates. */
TEST(Sharding, ShardedStatGroups)
{
    System sys(shardedConfig(Scheme::FsEncr, 2));
    EXPECT_EQ(sys.router().shardCount(), 2u);
    runDax1(sys);
    std::string stats = statsOf(sys);
    EXPECT_NE(stats.find("system.shards.serialTicks"),
              std::string::npos);
    EXPECT_NE(stats.find("system.mc0."), std::string::npos);
    EXPECT_NE(stats.find("system.mc1."), std::string::npos);
    EXPECT_EQ(stats.find("system.mc2."), std::string::npos);
}

/**
 * The shared CLI bundle folds into SimConfig exactly like the
 * defaults it replaced, rejects malformed specs without touching the
 * config, and treats "off" as auditing disabled.
 */
TEST(Sharding, McParamsApplyTo)
{
    SimConfig dflt;
    SimConfig cfg;
    McParams mc;
    std::string err;
    ASSERT_TRUE(mc.applyTo(cfg, err)) << err;
    EXPECT_EQ(cfg.pcm.mcBanks, dflt.pcm.mcBanks);
    EXPECT_EQ(cfg.pcm.mcMshrs, dflt.pcm.mcMshrs);
    EXPECT_EQ(cfg.pcm.mcShards, 1u);
    EXPECT_FALSE(cfg.sec.auditEnabled);
    EXPECT_EQ(cfg.sec.persistDomain, PersistDomain::Adr);

    mc.auditFilter = "off";
    ASSERT_TRUE(mc.applyTo(cfg, err)) << err;
    EXPECT_FALSE(cfg.sec.auditEnabled);

    mc.auditFilter = "all";
    mc.persistDomain = "eadr";
    mc.shards = 4;
    ASSERT_TRUE(mc.applyTo(cfg, err)) << err;
    EXPECT_TRUE(cfg.sec.auditEnabled);
    EXPECT_GT(cfg.layout.auditLogBytes, 0u);
    EXPECT_EQ(cfg.sec.persistDomain, PersistDomain::Eadr);
    EXPECT_EQ(cfg.pcm.mcShards, 4u);

    SimConfig untouched;
    McParams bad;
    bad.persistDomain = "nvdimm";
    EXPECT_FALSE(bad.applyTo(untouched, err));
    EXPECT_NE(err.find("--persist-domain"), std::string::npos);
    EXPECT_EQ(untouched.pcm.mcShards, 1u);

    bad = McParams{};
    bad.shards = 0;
    EXPECT_FALSE(bad.applyTo(untouched, err));
    EXPECT_NE(err.find("--mc-shards"), std::string::npos);
}

/**
 * Cross-shard determinism: at every shard count the same seed gives
 * the same ticks and a byte-identical stat dump across independent
 * runs (the ISSUE's "same seed => byte-identical reports at any
 * shard count").
 */
TEST(Sharding, CrossShardDeterminism)
{
    for (unsigned shards : {2u, 4u, 8u}) {
        auto once = [&](std::string *stats) {
            System sys(shardedConfig(Scheme::FsEncr, shards, 4));
            workloads::WorkloadResult r = runFill(sys);
            *stats = statsOf(sys);
            return r;
        };
        std::string sa, sb;
        workloads::WorkloadResult ra = once(&sa);
        workloads::WorkloadResult rb = once(&sb);
        EXPECT_EQ(ra.ticks, rb.ticks) << shards << " shards";
        EXPECT_EQ(ra.nvmReads, rb.nvmReads) << shards << " shards";
        EXPECT_EQ(ra.nvmWrites, rb.nvmWrites) << shards << " shards";
        EXPECT_EQ(sa, sb) << shards << " shards";
        EXPECT_GT(ra.ticks, 0u) << shards << " shards";
    }
}

/**
 * Epoch reconciliation aggregates: the serial ticks are exactly the
 * sum of the per-shard busy ticks, the visible ticks sit between the
 * busiest shard's total (perfect overlap) and the serial total (no
 * overlap), and the run's measured ticks cover the visible shard
 * time.
 */
TEST(Sharding, TickReconciliationInvariants)
{
    System sys(shardedConfig(Scheme::FsEncr, 4, 4));
    workloads::WorkloadResult r = runFill(sys);

    std::uint64_t serial = sys.measuredShardSerialTicks();
    std::uint64_t visible = sys.measuredShardVisibleTicks();
    std::uint64_t sum = 0, max = 0;
    for (unsigned k = 0; k < sys.router().shardCount(); ++k) {
        std::uint64_t b = sys.measuredShardBusyTicks(k);
        sum += b;
        if (b > max)
            max = b;
    }
    EXPECT_GT(serial, 0u);
    EXPECT_EQ(serial, sum);
    EXPECT_LE(visible, serial);
    EXPECT_GE(visible, max);
    EXPECT_GE(r.ticks, visible);
}

/**
 * Per-shard crash recovery: a bit flip on one shard's line
 * quarantines that line on its owner shard only — every other shard
 * recovers with an empty quarantine, and a bystander file on another
 * shard stays byte-exact.
 */
TEST(Sharding, CrashQuarantinesOnlyDamagedShard)
{
    SimConfig cfg = shardedConfig(Scheme::FsEncr, 4);
    System sys(cfg);
    workloads::standardEnvironment(sys, "pw");

    auto makeFile = [&](const char *path, std::uint8_t fill) {
        int fd = sys.creat(0, path, 0600, OpenFlags::Encrypted, "pw");
        sys.ftruncate(0, fd, pageSize);
        Addr va = sys.mmapFile(0, fd, pageSize);
        for (unsigned off = 0; off < pageSize; off += blockSize) {
            std::uint8_t buf[blockSize];
            std::memset(buf, fill, blockSize);
            sys.store(0, va + off, buf, blockSize);
        }
        sys.persist(0, va, pageSize);
        return fd;
    };
    makeFile("/pmem/a", 'A');
    makeFile("/pmem/b", 'B');
    sys.crash();

    Addr lineA =
        sys.fs().inode(*sys.fs().lookup("/pmem/a")).blocks[0];
    unsigned owner = sys.router().shardOf(lineA);
    FaultInjector inj;
    sys.setFaultInjector(&inj);
    std::uint8_t raw[blockSize];
    sys.device().readLine(lineA, raw);
    raw[5] ^= 0x10;
    sys.device().writeLine(lineA, raw);
    inj.noteTamper(lineA, 5 * 8 + 4);

    ASSERT_TRUE(sys.recover());
    EXPECT_TRUE(sys.router().isQuarantined(lineA));
    EXPECT_GT(sys.router().shard(owner).quarantinedCount(), 0u);
    for (unsigned k = 0; k < sys.router().shardCount(); ++k)
        if (k != owner)
            EXPECT_EQ(sys.router().shard(k).quarantinedCount(), 0u)
                << "shard " << k;

    // The bystander file (different pages, possibly different
    // shards) survives byte-exact.
    int fb = sys.open(0, "/pmem/b", OpenFlags::None, "pw");
    ASSERT_GE(fb, 0);
    std::uint8_t buf[blockSize];
    sys.fileRead(0, fb, 0, buf, blockSize);
    for (unsigned i = 0; i < blockSize; ++i)
        EXPECT_EQ(buf[i], 'B');
}

/**
 * Composition smoke: audit ride-along + eADR persistence domain +
 * sharding in one run. Records land in per-shard log slices (summed
 * across shards they must cover the run's DAX traffic), the run is
 * deterministic, and metadata recovers after a clean shutdown.
 */
TEST(Sharding, AuditEadrCombinedSmoke)
{
    auto once = [&]() {
        SimConfig cfg;
        cfg.scheme = Scheme::FsEncr;
        McParams mc;
        mc.shards = 4;
        mc.banks = 4;
        mc.auditFilter = "all";
        mc.persistDomain = "eadr";
        std::string err;
        EXPECT_TRUE(mc.applyTo(cfg, err)) << err;
        System sys(cfg);
        workloads::WorkloadResult r = runDax1(sys);
        std::uint64_t appended = 0;
        for (unsigned k = 0; k < sys.router().shardCount(); ++k) {
            AuditLog *log = sys.router().shard(k).auditLog();
            EXPECT_NE(log, nullptr) << "shard " << k;
            if (!log)
                continue;
            log->drain(sys.now());
            appended += log->appendedRecords();
        }
        EXPECT_GT(appended, 0u);
        sys.shutdown();
        EXPECT_TRUE(sys.router().recoverMetadata());
        return r.ticks;
    };
    Tick a = 0, b = 0;
    { SCOPED_TRACE("run A"); a = once(); }
    { SCOPED_TRACE("run B"); b = once(); }
    EXPECT_EQ(a, b);
    EXPECT_GT(a, 0u);
}
