/**
 * @file
 * Stress and geometry-sweep tests: PCM device parameter grid, OTT
 * spill-chain stress, trace fuzzing, stop-loss-factor traffic
 * monotonicity.
 */

#include <gtest/gtest.h>

#include <cstring>

#include "cpu/mem_trace.hh"
#include "fsenc/ott.hh"
#include "fsenc/secure_memory_controller.hh"
#include "mem/nvm_device.hh"
#include "secmem/merkle_tree.hh"
#include "workloads/workload.hh"

using namespace fsencr;

// ---------------------------------------------------------------
// PCM geometry sweep.
// ---------------------------------------------------------------

struct PcmGeometry
{
    unsigned ranks;
    unsigned banks;
    std::size_t rowBytes;
};

class PcmGeometrySweep : public ::testing::TestWithParam<PcmGeometry>
{};

TEST_P(PcmGeometrySweep, TimingInvariantsHold)
{
    PcmGeometry g = GetParam();
    PcmParams p;
    p.ranksPerChannel = g.ranks;
    p.banksPerRank = g.banks;
    p.rowBufferBytes = g.rowBytes;
    NvmDevice dev{p};

    // 1. Row-buffer hit beats a miss.
    MemRequest a{0x100000, false, TrafficClass::Data};
    MemRequest b{0x100040, false, TrafficClass::Data};
    Tick miss = dev.access(a, 0);
    Tick hit = dev.access(b, miss);
    EXPECT_LT(hit, miss);

    // 2. Determinism.
    NvmDevice dev2{p};
    EXPECT_EQ(dev2.access(a, 0), miss);

    // 3. Sequential sweeps beat random sprays of equal volume.
    NvmDevice seq_dev{p}, rnd_dev{p};
    Rng rng(9);
    Tick t_seq = 0, t_rnd = 0;
    for (unsigned i = 0; i < 512; ++i) {
        MemRequest s{Addr(i) * blockSize, false, TrafficClass::Data};
        t_seq += seq_dev.access(s, t_seq);
        MemRequest r{rng.nextBounded(1u << 28) & ~63ull, false,
                     TrafficClass::Data};
        t_rnd += rnd_dev.access(r, t_rnd);
    }
    EXPECT_LT(t_seq, t_rnd);

    // 4. Functional store is geometry-independent.
    std::uint8_t line[blockSize] = {0x42};
    dev.writeLine(0x4000, line);
    std::uint8_t out[blockSize];
    dev.readLine(0x4000, out);
    EXPECT_EQ(out[0], 0x42);
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, PcmGeometrySweep,
    ::testing::Values(PcmGeometry{1, 4, 1024}, PcmGeometry{2, 8, 1024},
                      PcmGeometry{2, 8, 2048}, PcmGeometry{4, 16, 512},
                      PcmGeometry{1, 1, 1024}));

// ---------------------------------------------------------------
// OTT stress: thousands of keys force deep spill chains.
// ---------------------------------------------------------------

TEST(OttStress, ThousandsOfKeysAllRecallable)
{
    PhysLayout layout{LayoutParams{}};
    NvmDevice device{PcmParams{}};
    MerkleTree tree(layout, device, 8);
    Rng rng(123);
    OpenTunnelTable ott(SecParams{}, layout, device, tree,
                        crypto::randomKey(rng), 1000);

    constexpr unsigned n = 4000; // ~4x on-chip capacity
    std::vector<crypto::Key128> keys;
    keys.reserve(n);
    for (std::uint32_t i = 0; i < n; ++i) {
        keys.push_back(crypto::randomKey(rng));
        ott.insert(i % 7, i + 1, keys.back(), i * 100,
                   /*log_immediately=*/true);
    }

    // Every key must be found, on-chip or via spill recall.
    for (std::uint32_t i = 0; i < n; ++i) {
        auto r = ott.lookup(i % 7, i + 1, 10'000'000 + i * 100);
        ASSERT_TRUE(r.found) << "key " << i;
        EXPECT_EQ(r.key, keys[i]) << "key " << i;
    }

    // And all of them survive a crash (immediate logging).
    ott.crash(false, 0);
    for (std::uint32_t i = 0; i < n; i += 97) {
        auto r = ott.lookup(i % 7, i + 1, 20'000'000 + i);
        ASSERT_TRUE(r.found) << "post-crash key " << i;
        EXPECT_EQ(r.key, keys[i]);
    }
}

TEST(OttStress, RemovalsLeaveOtherChainsIntact)
{
    PhysLayout layout{LayoutParams{}};
    NvmDevice device{PcmParams{}};
    MerkleTree tree(layout, device, 8);
    Rng rng(321);
    OpenTunnelTable ott(SecParams{}, layout, device, tree,
                        crypto::randomKey(rng), 1000);

    std::vector<crypto::Key128> keys;
    for (std::uint32_t i = 0; i < 2000; ++i) {
        keys.push_back(crypto::randomKey(rng));
        ott.insert(1, i + 1, keys.back(), 0, true);
    }
    // Remove every third key.
    for (std::uint32_t i = 0; i < 2000; i += 3)
        ott.remove(1, i + 1, 0);
    ott.crash(false, 0); // force everything through the spill region

    for (std::uint32_t i = 0; i < 2000; ++i) {
        auto r = ott.lookup(1, i + 1, 1000 + i);
        if (i % 3 == 0)
            EXPECT_FALSE(r.found) << i;
        else
            EXPECT_TRUE(r.found && r.key == keys[i]) << i;
    }
}

// ---------------------------------------------------------------
// Trace fuzz: random (but well-formed) traces replay cleanly under
// every scheme and never trip integrity machinery.
// ---------------------------------------------------------------

class TraceFuzz : public ::testing::TestWithParam<std::uint64_t>
{};

TEST_P(TraceFuzz, RandomTraceReplaysEverywhere)
{
    Rng rng(GetParam());
    PhysLayout layout{LayoutParams{}};
    MemTrace trace;

    // Register a few file keys and stamp some pages first.
    constexpr unsigned files = 4;
    std::vector<Addr> file_pages;
    for (std::uint32_t f = 0; f < files; ++f) {
        trace.append({TraceRecord::Kind::MmioKey, 0, 5, f + 1});
        for (unsigned p = 0; p < 4; ++p) {
            Addr page = layout.pmemBase() +
                        (f * 64 + p * 3) * pageSize;
            file_pages.push_back(page);
            trace.append({TraceRecord::Kind::MmioStamp,
                          setDfBit(page), 5, f + 1});
        }
    }

    for (unsigned i = 0; i < 2000; ++i) {
        std::uint64_t roll = rng.nextBounded(100);
        Addr addr;
        if (roll < 50) {
            // DAX line within a stamped page.
            Addr page =
                file_pages[rng.nextBounded(file_pages.size())];
            addr = setDfBit(page + rng.nextBounded(blocksPerPage) *
                                       blockSize);
        } else {
            // General memory.
            addr = rng.nextBounded(1u << 28) & ~63ull;
        }
        TraceRecord::Kind kind =
            roll % 3 == 0 ? TraceRecord::Kind::PersistWrite
            : roll % 3 == 1 ? TraceRecord::Kind::Write
                            : TraceRecord::Kind::Read;
        trace.append({kind, addr, 0, 0});
    }

    for (Scheme s : {Scheme::NoEncryption, Scheme::BaselineSecurity,
                     Scheme::FsEncr}) {
        SimConfig cfg;
        cfg.scheme = s;
        cfg.seed = GetParam();
        ReplayResult r = replayTrace(trace, cfg);
        EXPECT_GT(r.totalTicks, 0u);
        EXPECT_EQ(r.requests, 2000u);
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TraceFuzz,
                         ::testing::Values(1001, 1002, 1003, 1004));

// ---------------------------------------------------------------
// FECB stop-loss factor: larger factors must not increase NVM writes.
// ---------------------------------------------------------------

class FecbFactorSweep : public ::testing::TestWithParam<unsigned>
{};

TEST_P(FecbFactorSweep, WritesMonotoneAndRecoverable)
{
    SimConfig cfg;
    cfg.scheme = Scheme::FsEncr;
    cfg.sec.fecbStopLossFactor = GetParam();
    System sys(cfg);
    workloads::standardEnvironment(sys, "pw");
    int fd = sys.creat(0, "/pmem/f", 0600, OpenFlags::Encrypted, "pw");
    sys.ftruncate(0, fd, 4 * pageSize);
    Addr va = sys.mmapFile(0, fd, 4 * pageSize);

    sys.beginMeasurement();
    for (unsigned i = 1; i <= 200; ++i) {
        sys.write<std::uint64_t>(0, va + (i % 32) * 64, i);
        sys.persist(0, va + (i % 32) * 64, 8);
    }
    // Recovery still holds at this factor.
    sys.crash();
    ASSERT_TRUE(sys.recover());
    for (unsigned i = 193; i <= 200; ++i)
        EXPECT_EQ(sys.read<std::uint64_t>(0, va + (i % 32) * 64), i);
}

INSTANTIATE_TEST_SUITE_P(Factors, FecbFactorSweep,
                         ::testing::Values(1, 2, 4, 8));
