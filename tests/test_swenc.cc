/**
 * @file
 * Software-encryption baseline tests: page-cache fill/evict
 * accounting, cost model monotonicity, crash volatility.
 */

#include <gtest/gtest.h>

#include "mem/nvm_device.hh"
#include "swenc/sw_encryption.hh"

using namespace fsencr;

namespace {

struct SwEncFixture : ::testing::Test
{
    SwEncFixture() : device(PcmParams{})
    {
        params.pageCachePages = 4;
        params.swAesPerBlock = 15 * tickPerNs;
        params.faultOverhead = 2000 * tickPerNs;
        params.copyPerLine = 4 * tickPerNs;
    }

    PcmParams pcm;
    NvmDevice device;
    SwEncParams params;
};

} // namespace

TEST_F(SwEncFixture, FirstTouchIsExpensiveSecondIsFree)
{
    SwEncLayer sw(params, device);
    Tick first = sw.onAccess(0x1000, false, 0);
    Tick second = sw.onAccess(0x1080, false, first);
    EXPECT_GT(first, params.faultOverhead); // fault + 64 reads + AES
    EXPECT_EQ(second, 0u);                  // same page, cached
}

TEST_F(SwEncFixture, FillCostIncludesPageCrypto)
{
    SwEncLayer sw(params, device);
    Tick fill = sw.onAccess(0x2000, false, 0);
    // At minimum: fault + 256 AES blocks + 64 copies.
    Tick crypto = (pageSize / 16) * params.swAesPerBlock;
    EXPECT_GT(fill, params.faultOverhead + crypto);
}

TEST_F(SwEncFixture, CapacityEvictionWritesBackDirty)
{
    SwEncLayer sw(params, device);
    // Dirty one page, then stream reads through 5 more pages (cache
    // holds 4): the dirty page must be encrypted + written back.
    sw.onAccess(0x0, true, 0);
    std::uint64_t writes_before = device.numWrites();
    for (Addr p = 1; p <= 5; ++p)
        sw.onAccess(p * pageSize, false, p * 1000000);
    EXPECT_GT(device.numWrites(), writes_before);
    EXPECT_LE(sw.cachedPages(), 4u);
}

TEST_F(SwEncFixture, CleanEvictionIsSilent)
{
    SwEncLayer sw(params, device);
    for (Addr p = 0; p <= 5; ++p)
        sw.onAccess(p * pageSize, false, p * 1000000);
    EXPECT_EQ(device.numWrites(), 0u); // nothing was dirty
}

TEST_F(SwEncFixture, FlushWritesAllDirtyPages)
{
    SwEncLayer sw(params, device);
    sw.onAccess(0x0, true, 0);
    sw.onAccess(pageSize, true, 1000);
    sw.onAccess(2 * pageSize, false, 2000);
    std::uint64_t w0 = device.numWrites();
    Tick lat = sw.flush(3000);
    EXPECT_GT(lat, 0u);
    EXPECT_EQ(device.numWrites() - w0, 2 * blocksPerPage);
    // Second flush: everything clean.
    EXPECT_EQ(sw.flush(4000), 0u);
}

TEST_F(SwEncFixture, CrashDropsDecryptedCopies)
{
    SwEncLayer sw(params, device);
    sw.onAccess(0x0, true, 0);
    sw.crash();
    EXPECT_EQ(sw.cachedPages(), 0u);
    // Re-touch pays the fill again.
    EXPECT_GT(sw.onAccess(0x0, false, 1000), 0u);
}

TEST_F(SwEncFixture, StatsAreTracked)
{
    SwEncLayer sw(params, device);
    sw.onAccess(0x0, false, 0);
    sw.onAccess(0x40, false, 1);
    sw.onAccess(pageSize, true, 2);
    EXPECT_EQ(sw.statGroup().scalarValue("pageMisses"), 2u);
    EXPECT_EQ(sw.statGroup().scalarValue("pageHits"), 1u);
    EXPECT_EQ(sw.statGroup().scalarValue("pageDecrypts"), 2u);
}
