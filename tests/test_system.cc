/**
 * @file
 * Full-system integration tests: end-to-end encryption through the
 * cache hierarchy, crash/recovery with persisted data, scheme
 * performance ordering, and Table I's attack matrix by construction.
 */

#include <gtest/gtest.h>

#include <cstring>

#include "crypto/ctr_mode.hh"
#include "sim/system.hh"

using namespace fsencr;

namespace {

SimConfig
cfgFor(Scheme scheme, std::uint64_t seed = 99)
{
    SimConfig cfg;
    cfg.scheme = scheme;
    cfg.seed = seed;
    return cfg;
}

/** Boot, add alice, bind a process to core 0 (and 1). */
void
bootAlice(System &sys)
{
    sys.provisionAdmin("root-pw");
    sys.bootLogin("root-pw");
    sys.addUser("alice", 1000, 100, "alice-pw");
    std::uint32_t pid = sys.createProcess(1000);
    for (unsigned c = 0; c < sys.config().cpu.numCores; ++c)
        sys.runOnCore(c, pid);
}

/** Create an encrypted file, mmap it, return the VA. */
Addr
mapEncryptedFile(System &sys, const std::string &path,
                 std::uint64_t bytes)
{
    int fd = sys.creat(0, path, 0600, OpenFlags::Encrypted, "alice-pw");
    sys.ftruncate(0, fd, bytes);
    return sys.mmapFile(0, fd, bytes);
}

} // namespace

TEST(SystemIntegration, DaxDataIsCiphertextOnDevice)
{
    System sys(cfgFor(Scheme::FsEncr));
    bootAlice(sys);
    Addr va = mapEncryptedFile(sys, "/pmem/f", pageSize);

    const char secret[] = "the quick brown fox jumps over";
    sys.store(0, va, secret, sizeof(secret));
    sys.persist(0, va, sizeof(secret));

    // Scan the file's NVM page for the plaintext: must be absent.
    auto ino = sys.fs().lookup("/pmem/f");
    Addr page = sys.fs().inode(*ino).blocks[0];
    std::vector<std::uint8_t> raw(pageSize);
    sys.device().read(page, raw.data(), raw.size());
    auto it = std::search(raw.begin(), raw.end(), secret,
                          secret + sizeof(secret) - 1);
    EXPECT_EQ(it, raw.end());
}

TEST(SystemIntegration, NoEncryptionLeavesPlaintextOnDevice)
{
    System sys(cfgFor(Scheme::NoEncryption));
    bootAlice(sys);
    Addr va = mapEncryptedFile(sys, "/pmem/f", pageSize);
    const char secret[] = "plainly visible content";
    sys.store(0, va, secret, sizeof(secret));
    sys.persist(0, va, sizeof(secret));

    auto ino = sys.fs().lookup("/pmem/f");
    Addr page = sys.fs().inode(*ino).blocks[0];
    std::vector<std::uint8_t> raw(pageSize);
    sys.device().read(page, raw.data(), raw.size());
    auto it = std::search(raw.begin(), raw.end(), secret,
                          secret + sizeof(secret) - 1);
    EXPECT_NE(it, raw.end());
}

TEST(SystemIntegration, PersistedDataSurvivesCrash)
{
    System sys(cfgFor(Scheme::FsEncr));
    bootAlice(sys);
    Addr va = mapEncryptedFile(sys, "/pmem/f", 4 * pageSize);

    std::uint64_t persisted_value = 0xAAAA5555AAAA5555ull;
    sys.write<std::uint64_t>(0, va, persisted_value);
    sys.persist(0, va, 8);

    sys.crash();
    EXPECT_TRUE(sys.recover());
    sys.bootLogin("root-pw");

    EXPECT_EQ(sys.read<std::uint64_t>(0, va), persisted_value);
}

TEST(SystemIntegration, UnpersistedDataLostOnCrash)
{
    System sys(cfgFor(Scheme::FsEncr));
    bootAlice(sys);
    Addr va = mapEncryptedFile(sys, "/pmem/f", 4 * pageSize);

    sys.write<std::uint64_t>(0, va, 0x1111);
    sys.persist(0, va, 8);
    // Overwrite without persisting: stays dirty in cache.
    sys.write<std::uint64_t>(0, va, 0x2222);

    sys.crash();
    EXPECT_TRUE(sys.recover());
    // The persisted version is what survives.
    EXPECT_EQ(sys.read<std::uint64_t>(0, va), 0x1111u);
}

TEST(SystemIntegration, ManyLinesSurviveCrashRecovery)
{
    System sys(cfgFor(Scheme::FsEncr));
    bootAlice(sys);
    constexpr std::uint64_t n = 512;
    Addr va = mapEncryptedFile(sys, "/pmem/f", n * 8 + pageSize);

    for (std::uint64_t i = 0; i < n; ++i)
        sys.write<std::uint64_t>(0, va + i * 8, i * 0x9e3779b9ull);
    sys.persist(0, va, n * 8);

    sys.crash();
    ASSERT_TRUE(sys.recover());
    for (std::uint64_t i = 0; i < n; ++i)
        EXPECT_EQ(sys.read<std::uint64_t>(0, va + i * 8),
                  i * 0x9e3779b9ull)
            << "line " << i;
}

TEST(SystemIntegration, CrashRecoveryWorksForBaselineToo)
{
    System sys(cfgFor(Scheme::BaselineSecurity));
    bootAlice(sys);
    Addr va = mapEncryptedFile(sys, "/pmem/f", pageSize);
    sys.write<std::uint64_t>(0, va, 0xfeedbeef);
    sys.persist(0, va, 8);
    sys.crash();
    EXPECT_TRUE(sys.recover());
    EXPECT_EQ(sys.read<std::uint64_t>(0, va), 0xfeedbeefu);
}

TEST(SystemIntegration, SchemePerformanceOrdering)
{
    // The paper's central claim, as an invariant: for a DAX-heavy
    // workload, no-encryption <= baseline <= FsEncr << software.
    auto run = [](Scheme scheme) {
        System sys(cfgFor(scheme));
        bootAlice(sys);
        Addr va = mapEncryptedFile(sys, "/pmem/w", 8 << 20);
        sys.beginMeasurement();
        // Strided read/write sweep with periodic persistence, the
        // access pattern of a persistent application.
        for (Addr off = 0; off < (8u << 20); off += 128) {
            if ((off >> 7) & 1) {
                std::uint8_t v = 1;
                sys.store(0, va + off, &v, 1);
                if ((off & 0xfff) == 0x80)
                    sys.persist(0, va + off, 1);
            } else {
                std::uint8_t v;
                sys.load(0, va + off, &v, 1);
            }
        }
        return sys.measuredTicks();
    };

    Tick none = run(Scheme::NoEncryption);
    Tick base = run(Scheme::BaselineSecurity);
    Tick fsenc = run(Scheme::FsEncr);
    Tick sw = run(Scheme::SoftwareEncryption);

    EXPECT_LE(none, base);
    EXPECT_LE(base, fsenc);
    EXPECT_LT(fsenc, sw);
    // Software encryption must be dramatically slower (Figure 3).
    EXPECT_GT(static_cast<double>(sw) / none, 2.0);
}

TEST(SystemIntegration, FsEncrOverheadIsModest)
{
    // FsEncr vs baseline on a cache-friendly workload: single-digit
    // percent (the 3.8% claim is for real workloads; here we only
    // bound it loosely).
    auto run = [](Scheme scheme) {
        System sys(cfgFor(scheme));
        bootAlice(sys);
        Addr va = mapEncryptedFile(sys, "/pmem/w", 1 << 20);
        sys.beginMeasurement();
        for (int pass = 0; pass < 4; ++pass)
            for (Addr off = 0; off < (1u << 20); off += 64) {
                std::uint64_t v;
                sys.load(0, va + off, &v, 8);
            }
        return sys.measuredTicks();
    };
    double ratio = static_cast<double>(run(Scheme::FsEncr)) /
                   static_cast<double>(run(Scheme::BaselineSecurity));
    EXPECT_LT(ratio, 1.35);
    EXPECT_GE(ratio, 0.99);
}

TEST(SystemIntegration, TableOneAttackMatrix)
{
    // Table I by construction. System C (FsEncr): revealing the memory
    // key alone must NOT expose DAX file plaintext.
    System sys(cfgFor(Scheme::FsEncr));
    bootAlice(sys);
    Addr va = mapEncryptedFile(sys, "/pmem/f", pageSize);
    std::uint8_t plain[blockSize];
    for (unsigned i = 0; i < blockSize; ++i)
        plain[i] = static_cast<std::uint8_t>(i ^ 0x5a);
    sys.store(0, va, plain, blockSize);
    sys.persist(0, va, blockSize);
    // The attacker pulls the DIMM after power-down: orderly shutdown
    // leaves the final counter values persisted next to the data.
    sys.shutdown();

    auto ino = sys.fs().lookup("/pmem/f");
    Addr page = sys.fs().inode(*ino).blocks[0];

    // Attacker A: has the memory key, scans NVM (Attacker X of Fig 4).
    crypto::Aes128 mem_aes(sys.mc().memoryKey());
    Mecb mecb =
        sys.mc().counters().persistedMecb(sys.layout().mecbAddr(page));
    std::uint8_t cipher[blockSize];
    sys.device().readLine(page, cipher);
    crypto::Line mem_pad = crypto::makeOtp(
        mem_aes,
        {pageNumber(page), blockInPage(page), mecb.major,
         mecb.minors.minor[blockInPage(page)]});
    std::uint8_t attempt[blockSize];
    std::memcpy(attempt, cipher, blockSize);
    crypto::xorLine(attempt, mem_pad);
    // Memory key alone: still ciphertext (file layer holds).
    EXPECT_NE(0, std::memcmp(attempt, plain, blockSize));

    // Attacker B: additionally has the file key -> plaintext falls.
    auto key = sys.mc().ott().lookup(100, *ino, 0);
    ASSERT_TRUE(key.found);
    crypto::Aes128 file_aes(key.key);
    Fecb fecb =
        sys.mc().counters().persistedFecb(sys.layout().fecbAddr(page));
    crypto::Line file_pad = crypto::makeOtp(
        file_aes,
        {pageNumber(page), blockInPage(page), fecb.major,
         fecb.minors.minor[blockInPage(page)]});
    crypto::xorLine(attempt, file_pad);
    EXPECT_EQ(0, std::memcmp(attempt, plain, blockSize));
}

TEST(SystemIntegration, SoftwareEncryptionPageCacheWorks)
{
    System sys(cfgFor(Scheme::SoftwareEncryption));
    bootAlice(sys);
    Addr va = mapEncryptedFile(sys, "/pmem/f", 4 * pageSize);

    std::uint32_t v = 0xabcd;
    sys.write<std::uint32_t>(0, va, v);
    EXPECT_EQ(sys.read<std::uint32_t>(0, va), v);
    ASSERT_NE(sys.swenc(), nullptr);
    EXPECT_GE(sys.swenc()->cachedPages(), 1u);
}

TEST(SystemIntegration, ShutdownFlushesEverything)
{
    System sys(cfgFor(Scheme::FsEncr));
    bootAlice(sys);
    Addr va = mapEncryptedFile(sys, "/pmem/f", pageSize);
    sys.write<std::uint64_t>(0, va, 0x77);
    sys.shutdown();
    // After an orderly shutdown even unpersisted stores are on NVM.
    sys.crash();
    EXPECT_TRUE(sys.recover());
    EXPECT_EQ(sys.read<std::uint64_t>(0, va), 0x77u);
}

TEST(SystemIntegration, TwoCoresShareData)
{
    System sys(cfgFor(Scheme::FsEncr));
    bootAlice(sys);
    Addr va = mapEncryptedFile(sys, "/pmem/f", pageSize);
    sys.write<std::uint64_t>(0, va, 123);
    EXPECT_EQ(sys.read<std::uint64_t>(1, va), 123u);
}

TEST(SystemIntegration, MeasurementWindowIsolatesSetup)
{
    System sys(cfgFor(Scheme::FsEncr));
    bootAlice(sys);
    Addr va = mapEncryptedFile(sys, "/pmem/f", pageSize);
    sys.write<std::uint64_t>(0, va, 1);
    sys.beginMeasurement();
    EXPECT_EQ(sys.measuredTicks(), 0u);
    sys.write<std::uint64_t>(0, va, 2);
    EXPECT_GT(sys.measuredTicks(), 0u);
}

TEST(SystemIntegration, StatsDumpContainsKeyCounters)
{
    System sys(cfgFor(Scheme::FsEncr));
    bootAlice(sys);
    Addr va = mapEncryptedFile(sys, "/pmem/f", pageSize);
    sys.write<std::uint64_t>(0, va, 1);
    std::ostringstream os;
    sys.dumpStats(os);
    std::string s = os.str();
    EXPECT_NE(s.find("system.nvm.reads"), std::string::npos);
    EXPECT_NE(s.find("system.mc.daxWrites"), std::string::npos);
    EXPECT_NE(s.find("system.kernel.daxFaults"), std::string::npos);
}
