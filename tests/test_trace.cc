/**
 * @file
 * Memory-trace subsystem tests: capture at the controller boundary,
 * binary round-trip, deterministic replay, and replay-based
 * sensitivity (the gem5 TraceCPU-style use case).
 */

#include <gtest/gtest.h>

#include <cstdio>

#include "cpu/mem_trace.hh"
#include "sim/system.hh"
#include "workloads/workload.hh"

using namespace fsencr;

namespace {

SimConfig
cfgFor(Scheme scheme)
{
    SimConfig cfg;
    cfg.scheme = scheme;
    cfg.seed = 55;
    return cfg;
}

/** Capture a small DAX workload's controller-level trace. */
MemTrace
captureWorkload()
{
    System sys(cfgFor(Scheme::FsEncr));
    MemTrace trace;
    sys.mc().setTraceCapture(&trace);

    workloads::standardEnvironment(sys, "pw");
    int fd = sys.creat(0, "/pmem/t", 0600, OpenFlags::Encrypted, "pw");
    sys.ftruncate(0, fd, 1 << 20);
    Addr va = sys.mmapFile(0, fd, 1 << 20);
    for (Addr off = 0; off < (1u << 20); off += 256) {
        sys.write<std::uint32_t>(0, va + off,
                                 static_cast<std::uint32_t>(off));
        if ((off & 0xfff) == 0)
            sys.persist(0, va + off, 4);
    }
    sys.mc().setTraceCapture(nullptr);
    return trace;
}

} // namespace

TEST(MemTraceUnit, CapturesRequestMix)
{
    MemTrace trace = captureWorkload();
    ASSERT_GT(trace.size(), 0u);

    unsigned reads = 0, writes = 0, persists = 0, stamps = 0,
             keys = 0;
    for (const TraceRecord &r : trace.records()) {
        switch (r.kind) {
          case TraceRecord::Kind::Read: ++reads; break;
          case TraceRecord::Kind::Write: ++writes; break;
          case TraceRecord::Kind::PersistWrite: ++persists; break;
          case TraceRecord::Kind::MmioStamp: ++stamps; break;
          case TraceRecord::Kind::MmioKey: ++keys; break;
        }
    }
    EXPECT_GT(reads, 0u);
    EXPECT_GT(persists, 0u);
    EXPECT_GT(stamps, 0u);
    EXPECT_EQ(keys, 1u); // one encrypted file created
}

TEST(MemTraceUnit, DaxRequestsCarryDfBit)
{
    MemTrace trace = captureWorkload();
    bool any_df = false;
    for (const TraceRecord &r : trace.records())
        if (r.kind == TraceRecord::Kind::Read && hasDfBit(r.paddr))
            any_df = true;
    EXPECT_TRUE(any_df);
}

TEST(MemTraceUnit, SaveLoadRoundTrip)
{
    MemTrace trace = captureWorkload();
    const char *path = "/tmp/fsencr_test_trace.bin";
    ASSERT_TRUE(trace.save(path));

    MemTrace loaded;
    ASSERT_TRUE(loaded.load(path));
    ASSERT_EQ(loaded.size(), trace.size());
    for (std::size_t i = 0; i < trace.size(); ++i) {
        EXPECT_EQ(loaded.records()[i].kind, trace.records()[i].kind);
        EXPECT_EQ(loaded.records()[i].paddr,
                  trace.records()[i].paddr);
        EXPECT_EQ(loaded.records()[i].gid, trace.records()[i].gid);
        EXPECT_EQ(loaded.records()[i].fid, trace.records()[i].fid);
    }
    std::remove(path);
}

TEST(MemTraceUnit, LoadRejectsGarbage)
{
    const char *path = "/tmp/fsencr_bad_trace.bin";
    std::FILE *f = std::fopen(path, "wb");
    std::fputs("this is not a trace", f);
    std::fclose(f);
    MemTrace t;
    EXPECT_FALSE(t.load(path));
    std::remove(path);
    EXPECT_FALSE(t.load("/nonexistent/path/trace.bin"));
}

TEST(MemTraceUnit, ReplayIsDeterministic)
{
    MemTrace trace = captureWorkload();
    ReplayResult a = replayTrace(trace, cfgFor(Scheme::FsEncr));
    ReplayResult b = replayTrace(trace, cfgFor(Scheme::FsEncr));
    EXPECT_EQ(a.totalTicks, b.totalTicks);
    EXPECT_EQ(a.nvmReads, b.nvmReads);
    EXPECT_EQ(a.nvmWrites, b.nvmWrites);
    EXPECT_GT(a.requests, 0u);
}

TEST(MemTraceUnit, ReplaySensitivityToMetadataCache)
{
    MemTrace trace = captureWorkload();

    SimConfig small = cfgFor(Scheme::FsEncr);
    small.sec.metadataCacheBytes = 16 << 10;
    SimConfig big = cfgFor(Scheme::FsEncr);
    big.sec.metadataCacheBytes = 2 << 20;

    ReplayResult rs = replayTrace(trace, small);
    ReplayResult rb = replayTrace(trace, big);
    // A smaller metadata cache can never make the replay faster.
    EXPECT_GE(rs.totalTicks, rb.totalTicks);
    EXPECT_GE(rs.nvmReads, rb.nvmReads);
}

TEST(MemTraceUnit, ReplayAcrossSchemes)
{
    MemTrace trace = captureWorkload();
    ReplayResult none =
        replayTrace(trace, cfgFor(Scheme::NoEncryption));
    ReplayResult base =
        replayTrace(trace, cfgFor(Scheme::BaselineSecurity));
    ReplayResult fsenc = replayTrace(trace, cfgFor(Scheme::FsEncr));
    EXPECT_LE(none.totalTicks, base.totalTicks);
    EXPECT_LE(base.totalTicks, fsenc.totalTicks);
}
