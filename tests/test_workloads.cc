/**
 * @file
 * Workload tests: KV engine correctness through the full simulated
 * memory system, pool allocator behaviour, workload determinism and
 * crash consistency of persisted stores.
 */

#include <gtest/gtest.h>

#include <cstring>
#include <map>

#include "pmdk/pmem.hh"
#include "workloads/btree_kv.hh"
#include "workloads/ctree_kv.hh"
#include "workloads/dax_micro.hh"
#include "workloads/hashmap_kv.hh"
#include "workloads/pmemkv_bench.hh"
#include "workloads/whisper_bench.hh"
#include "workloads/workload.hh"

using namespace fsencr;
using namespace fsencr::workloads;

namespace {

SimConfig
cfgFor(Scheme scheme)
{
    SimConfig cfg;
    cfg.scheme = scheme;
    cfg.seed = 321;
    return cfg;
}

struct PoolFixture : ::testing::Test
{
    PoolFixture() : sys(cfgFor(Scheme::FsEncr))
    {
        standardEnvironment(sys, "alice-pass");
        pool = std::make_unique<pmdk::PmemPool>(
            sys, 0, "/pmem/test.pool", 16 << 20, true, "alice-pass");
    }

    System sys;
    std::unique_ptr<pmdk::PmemPool> pool;
};

} // namespace

TEST_F(PoolFixture, AllocationsAreDisjointAndAligned)
{
    Addr a = pool->alloc(100);
    Addr b = pool->alloc(100);
    EXPECT_EQ(a % blockSize, 0u);
    EXPECT_EQ(b % blockSize, 0u);
    EXPECT_GE(b, a + 128); // 100 rounds to 128
}

TEST_F(PoolFixture, FreeListReusesBlocks)
{
    Addr a = pool->alloc(256);
    pool->free(a, 256);
    Addr b = pool->alloc(256);
    EXPECT_EQ(a, b);
}

TEST_F(PoolFixture, RootPointerPersists)
{
    pool->setRoot(0x1234560);
    EXPECT_EQ(pool->root(), 0x1234560u);
}

TEST_F(PoolFixture, PoolDataGoesThroughSimMemory)
{
    Addr a = pool->alloc(64);
    std::uint64_t before = sys.statGroup().scalarValue("stores");
    sys.write<std::uint64_t>(0, a, 42);
    EXPECT_GT(sys.statGroup().scalarValue("stores"), before);
}

TEST_F(PoolFixture, OutOfSpaceIsFatal)
{
    EXPECT_THROW(pool->alloc(1ull << 40), FatalError);
}

TEST_F(PoolFixture, BTreePutGetSmall)
{
    BTreeKv kv(*pool);
    std::uint8_t val[64], out[64];
    Rng rng(5);
    std::map<std::uint64_t, std::array<std::uint8_t, 64>> shadow;

    for (int i = 0; i < 300; ++i) {
        std::uint64_t key = rng.nextBounded(120);
        rng.fill(val, sizeof(val));
        kv.put(0, key, val, sizeof(val));
        std::array<std::uint8_t, 64> copy;
        std::memcpy(copy.data(), val, 64);
        shadow[key] = copy;
    }
    for (auto &[key, expect] : shadow) {
        ASSERT_TRUE(kv.get(0, key, out, sizeof(out))) << key;
        EXPECT_EQ(0, std::memcmp(out, expect.data(), 64)) << key;
    }
    EXPECT_EQ(kv.count(), shadow.size());
}

TEST_F(PoolFixture, BTreeSequentialInsertAndSplits)
{
    BTreeKv kv(*pool);
    std::uint64_t v;
    for (std::uint64_t k = 0; k < 500; ++k) {
        v = k * 31;
        kv.put(0, k, &v, sizeof(v));
    }
    for (std::uint64_t k = 0; k < 500; ++k) {
        std::uint64_t out = 0;
        ASSERT_TRUE(kv.get(0, k, &out, sizeof(out))) << k;
        EXPECT_EQ(out, k * 31);
    }
}

TEST_F(PoolFixture, BTreeMissingKey)
{
    BTreeKv kv(*pool);
    std::uint64_t v = 1;
    kv.put(0, 10, &v, sizeof(v));
    std::uint64_t out;
    EXPECT_FALSE(kv.get(0, 11, &out, sizeof(out)));
}

TEST_F(PoolFixture, BTreeLargeValues)
{
    BTreeKv kv(*pool);
    std::vector<std::uint8_t> big(4096), out(4096);
    Rng rng(6);
    for (std::uint64_t k = 0; k < 40; ++k) {
        rng.fill(big.data(), big.size());
        kv.put(0, k, big.data(), big.size());
        ASSERT_TRUE(kv.get(0, k, out.data(), out.size()));
        EXPECT_EQ(out, big);
    }
}

TEST_F(PoolFixture, BTreeInPlaceOverwrite)
{
    BTreeKv kv(*pool);
    std::uint64_t v1 = 111, v2 = 222, out;
    kv.put(0, 5, &v1, sizeof(v1));
    kv.put(0, 5, &v2, sizeof(v2));
    ASSERT_TRUE(kv.get(0, 5, &out, sizeof(out)));
    EXPECT_EQ(out, 222u);
    EXPECT_EQ(kv.count(), 1u);
}

TEST_F(PoolFixture, HashmapProbesThroughCollisions)
{
    // Tiny table forces probe chains; every key must still be found.
    HashmapKv kv(*pool, 64, 128);
    std::uint8_t val[128], out[128];
    Rng rng(7);
    for (std::uint64_t k = 0; k < 40; ++k) {
        std::memset(val, static_cast<int>(k), sizeof(val));
        kv.put(0, k * 977 + 1, val);
    }
    for (std::uint64_t k = 0; k < 40; ++k) {
        ASSERT_TRUE(kv.get(0, k * 977 + 1, out)) << k;
        EXPECT_EQ(out[0], static_cast<std::uint8_t>(k));
    }
}

TEST_F(PoolFixture, HashmapRoundTripAndUpdate)
{
    HashmapKv kv(*pool, 2048, 128);
    std::uint8_t val[128], out[128];
    Rng rng(8);
    std::map<std::uint64_t, std::array<std::uint8_t, 128>> shadow;
    for (int i = 0; i < 400; ++i) {
        std::uint64_t key = rng.nextBounded(200);
        rng.fill(val, sizeof(val));
        kv.put(0, key, val);
        std::array<std::uint8_t, 128> c;
        std::memcpy(c.data(), val, 128);
        shadow[key] = c;
    }
    for (auto &[key, expect] : shadow) {
        ASSERT_TRUE(kv.get(0, key, out));
        EXPECT_EQ(0, std::memcmp(out, expect.data(), 128));
    }
    std::uint8_t dummy[128];
    EXPECT_FALSE(kv.get(0, 99999, dummy));
}

TEST_F(PoolFixture, CTreeRoundTrip)
{
    CTreeKv kv(*pool, 128);
    std::uint8_t val[128], out[128];
    Rng rng(9);
    std::map<std::uint64_t, std::array<std::uint8_t, 128>> shadow;
    for (int i = 0; i < 300; ++i) {
        std::uint64_t key = rng.next();
        rng.fill(val, sizeof(val));
        kv.put(0, key, val);
        std::array<std::uint8_t, 128> c;
        std::memcpy(c.data(), val, 128);
        shadow[key] = c;
    }
    for (auto &[key, expect] : shadow) {
        ASSERT_TRUE(kv.get(0, key, out));
        EXPECT_EQ(0, std::memcmp(out, expect.data(), 128));
    }
}

TEST_F(PoolFixture, CTreeUpdateInPlace)
{
    CTreeKv kv(*pool, 128);
    std::uint8_t v1[128], v2[128], out[128];
    std::memset(v1, 1, 128);
    std::memset(v2, 2, 128);
    kv.put(0, 7, v1);
    kv.put(0, 7, v2);
    ASSERT_TRUE(kv.get(0, 7, out));
    EXPECT_EQ(out[0], 2);
    EXPECT_EQ(kv.count(), 1u);
}

TEST_F(PoolFixture, BTreeReopensFromPersistentRoot)
{
    {
        BTreeKv kv(*pool);
        std::uint64_t v;
        for (std::uint64_t k = 0; k < 120; ++k) {
            v = k ^ 0xabcd;
            kv.put(0, k, &v, sizeof(v));
        }
    }
    // A "new process" opens the same pool: the root pointer and all
    // nodes come back from pmem; the reopen walk recounts the keys.
    BTreeKv reopened(*pool);
    EXPECT_EQ(reopened.count(), 120u);
    std::uint64_t out = 0;
    ASSERT_TRUE(reopened.get(0, 77, &out, sizeof(out)));
    EXPECT_EQ(out, 77u ^ 0xabcd);
}

TEST(WorkloadRuns, BTreeStateSurvivesSystemCrash)
{
    System sys(cfgFor(Scheme::FsEncr));
    standardEnvironment(sys, "alice-pass");
    pmdk::PmemPool pool(sys, 0, "/pmem/crash.pool", 8 << 20, true,
                        "alice-pass");
    BTreeKv kv(pool);
    std::uint64_t v;
    for (std::uint64_t k = 0; k < 64; ++k) {
        v = k + 1000;
        kv.put(0, k, &v, sizeof(v));
    }
    sys.crash();
    ASSERT_TRUE(sys.recover());

    // Every put persisted its value and node updates, so the tree is
    // intact after recovery.
    for (std::uint64_t k = 0; k < 64; ++k) {
        std::uint64_t out = 0;
        ASSERT_TRUE(kv.get(0, k, &out, sizeof(out))) << k;
        EXPECT_EQ(out, k + 1000);
    }
}

TEST(WorkloadRuns, PmemkvWorkloadRunsAndCounts)
{
    System sys(cfgFor(Scheme::FsEncr));
    PmemkvConfig cfg;
    cfg.op = PmemkvOp::FillSeq;
    cfg.valueBytes = 64;
    cfg.numKeys = 256;
    cfg.numOps = 256;
    PmemkvWorkload w(cfg);
    auto r = runWorkload(sys, w);
    EXPECT_GT(r.ticks, 0u);
    EXPECT_GT(r.nvmWrites, 0u);
    EXPECT_EQ(r.operations, 256u);
    EXPECT_EQ(w.name(), "Fillseq-S");
}

TEST(WorkloadRuns, PmemkvReadWorkloadPreloads)
{
    System sys(cfgFor(Scheme::BaselineSecurity));
    PmemkvConfig cfg;
    cfg.op = PmemkvOp::ReadRandom;
    cfg.valueBytes = 64;
    cfg.numKeys = 256;
    cfg.numOps = 256;
    PmemkvWorkload w(cfg);
    auto r = runWorkload(sys, w);
    EXPECT_GT(r.ticks, 0u);
    // A pure-read phase over a small (cache-resident) store generates
    // at most stray background writes, never a write-dominated
    // profile.
    EXPECT_LE(r.nvmWrites, 64u);
}

TEST(WorkloadRuns, WhisperSuiteShapes)
{
    auto suite = whisperSuite(512);
    ASSERT_EQ(suite.size(), 3u);
    EXPECT_EQ(suite[0].kind, WhisperKind::Ycsb);
    EXPECT_EQ(suite[0].valueBytes, 1024u);
    EXPECT_EQ(suite[1].valueBytes, 128u);

    System sys(cfgFor(Scheme::FsEncr));
    WhisperWorkload w(suite[1]); // Hashmap
    auto r = runWorkload(sys, w);
    EXPECT_GT(r.ticks, 0u);
    EXPECT_EQ(w.name(), std::string("Hashmap"));
}

TEST(WorkloadRuns, DaxMicroStrideTouchesExpectedBytes)
{
    System sys(cfgFor(Scheme::BaselineSecurity));
    DaxMicroConfig cfg;
    cfg.kind = DaxMicroKind::Dax1;
    cfg.spanBytes = 1 << 20;
    DaxMicroWorkload w(cfg);
    auto r = runWorkload(sys, w);
    EXPECT_EQ(r.operations, (1u << 20) / 16);
    EXPECT_GT(r.nvmReads, 0u);
}

TEST(WorkloadRuns, DeterministicAcrossRuns)
{
    auto run = []() {
        System sys(cfgFor(Scheme::FsEncr));
        PmemkvConfig cfg;
        cfg.op = PmemkvOp::FillRandom;
        cfg.valueBytes = 64;
        cfg.numKeys = 128;
        cfg.numOps = 128;
        PmemkvWorkload w(cfg);
        auto r = runWorkload(sys, w);
        return std::make_tuple(r.ticks, r.nvmReads, r.nvmWrites);
    };
    EXPECT_EQ(run(), run());
}

TEST(WorkloadRuns, PmemkvSuiteHasTenConfigs)
{
    auto suite = pmemkvSuite();
    EXPECT_EQ(suite.size(), 10u);
    unsigned small = 0, large = 0;
    for (auto &c : suite)
        (c.valueBytes >= 4096 ? large : small)++;
    EXPECT_EQ(small, 5u);
    EXPECT_EQ(large, 5u);
}
