/**
 * @file
 * fsencr-auditq — query/export pipeline over the in-controller audit
 * log (see docs/ARCHITECTURE.md, "Audit ride-along").
 *
 * The simulator has no persistent device images, so the tool does
 * what fsencr-crashtest does: it reconstructs the run in-process
 * (everything derives from --seed), then scans the on-NVM log region
 * exactly as an offline reader would — header check, Merkle leaf
 * verification per line, sequence-chain validation — and emits a
 * versioned fsencr-audit-report JSON (optionally CSV). With
 * --crash-at-write N the run is cut short by a power loss and the
 * scan runs against the recovered image instead, which is the
 * post-crash path the crashtest invariants lean on.
 *
 * Examples:
 *   fsencr-auditq --workload fillrandom-S --ops 2000
 *   fsencr-auditq --workload ycsb --gid 100 --op persist --csv out.csv
 *   fsencr-auditq --workload fillrandom-S --crash-at-write 500
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <map>
#include <memory>
#include <string>

#include "common/cli.hh"
#include "common/logging.hh"
#include "common/report.hh"
#include "fault/fault_injector.hh"
#include "fsenc/secure_memory_controller.hh"
#include "workloads/dax_micro.hh"
#include "workloads/extra_workloads.hh"
#include "workloads/pmemkv_bench.hh"
#include "workloads/whisper_bench.hh"
#include "workloads/workload.hh"

using namespace fsencr;
using namespace fsencr::workloads;

namespace {

struct Options
{
    Scheme scheme = Scheme::FsEncr;
    std::string workload = "fillrandom-S";
    std::uint64_t ops = 0;
    std::uint64_t keys = 0;
    std::uint64_t seed = 42;
    std::string auditFilter = "all";
    std::uint64_t crashAtWrite = 0; //!< 0 = clean run

    // Query predicate over the recovered records.
    std::int64_t gid = -1;        //!< -1 = any
    std::int64_t fid = -1;        //!< -1 = any
    std::string op = "any";       //!< any|read|write|persist
    std::uint64_t limit = 0;      //!< 0 = all matches

    std::string reportOut;        //!< --report FILE (default stdout)
    std::string csvOut;           //!< --csv FILE
};

bool
parseScheme(const std::string &s, Scheme &out)
{
    if (s == "none" || s == "ext4-dax") {
        out = Scheme::NoEncryption;
    } else if (s == "baseline") {
        out = Scheme::BaselineSecurity;
    } else if (s == "fsencr") {
        out = Scheme::FsEncr;
    } else {
        return false;
    }
    return true;
}

int
parseArgs(int argc, char **argv, Options &opt)
{
    cli::Parser p;
    p.custom("--scheme", "{none|baseline|fsencr}",
             "protection scheme (swenc has no DAX stream to audit)",
             [&opt](const std::string &v) {
                 if (!parseScheme(v, opt.scheme)) {
                     std::fprintf(stderr, "unknown scheme\n");
                     return false;
                 }
                 return true;
             })
        .opt("--workload", "NAME", "workload to reconstruct",
             &opt.workload)
        .optU64("--ops", "N", "operation count (0 = default)",
                &opt.ops)
        .optU64("--keys", "N", "key count (0 = default)", &opt.keys)
        .optU64("--seed", "N", "determinism", &opt.seed)
        .custom("--audit-filter", "{all|G1,G2,...}",
                "GroupID predicate the run records under",
                [&opt](const std::string &v) {
                    SecParams probe;
                    if (!parseAuditFilter(v, probe)) {
                        std::fprintf(stderr,
                                     "bad --audit-filter '%s'\n",
                                     v.c_str());
                        return false;
                    }
                    opt.auditFilter = v;
                    return true;
                })
        .optU64("--crash-at-write", "N",
                "power loss at the Nth NVM write, then recover "
                "(0 = clean run)",
                &opt.crashAtWrite)
        .custom("--gid", "G", "select one GroupID",
                [&opt](const std::string &v) {
                    char *end = nullptr;
                    opt.gid = std::strtoll(v.c_str(), &end, 10);
                    return end && *end == '\0' && opt.gid >= 0;
                })
        .custom("--fid", "F", "select one FileID",
                [&opt](const std::string &v) {
                    char *end = nullptr;
                    opt.fid = std::strtoll(v.c_str(), &end, 10);
                    return end && *end == '\0' && opt.fid >= 0;
                })
        .optU64("--limit", "N", "cap emitted records (0 = all)",
                &opt.limit)
        .opt("--op", "{any|read|write|persist}", "select one op kind",
             &opt.op)
        .opt("--report", "FILE", "write the JSON report here",
             &opt.reportOut)
        .opt("--csv", "FILE", "also export matches as CSV",
             &opt.csvOut);
    return p.parse(argc, argv);
}

/** Compact factory over the sim tool's workload names. */
std::unique_ptr<Workload>
makeWorkload(const Options &o)
{
    auto dash = o.workload.rfind('-');
    std::string base = o.workload.substr(0, dash);
    std::string size =
        dash == std::string::npos ? "" : o.workload.substr(dash + 1);

    static const std::map<std::string, PmemkvOp> kvOps = {
        {"fillseq", PmemkvOp::FillSeq},
        {"fillrandom", PmemkvOp::FillRandom},
        {"overwrite", PmemkvOp::Overwrite},
        {"readrandom", PmemkvOp::ReadRandom},
        {"readseq", PmemkvOp::ReadSeq},
    };
    auto kv = kvOps.find(base);
    if (kv != kvOps.end() && (size == "S" || size == "L")) {
        PmemkvConfig c;
        c.op = kv->second;
        c.valueBytes = size == "L" ? 4096 : 64;
        c.numKeys =
            o.keys ? o.keys : (c.valueBytes >= 4096 ? 2048 : 32768);
        c.numOps = o.ops ? o.ops : c.numKeys;
        c.seed = o.seed;
        return std::make_unique<PmemkvWorkload>(c);
    }

    static const std::map<std::string, WhisperKind> whisper = {
        {"ycsb", WhisperKind::Ycsb},
        {"hashmap", WhisperKind::Hashmap},
        {"ctree", WhisperKind::CTree},
    };
    auto wh = whisper.find(o.workload);
    if (wh != whisper.end()) {
        WhisperConfig c;
        c.kind = wh->second;
        c.valueBytes = wh->second == WhisperKind::Ycsb ? 1024 : 128;
        c.readRatio = wh->second == WhisperKind::Ycsb ? 0.5 : 0.3;
        c.numKeys = o.keys ? o.keys : 32768;
        c.numOps = o.ops ? o.ops : c.numKeys;
        c.seed = o.seed;
        return std::make_unique<WhisperWorkload>(c);
    }

    if (o.workload == "logappend") {
        LogAppendConfig c;
        c.numRecords = o.ops ? o.ops : 20000;
        c.seed = o.seed;
        return std::make_unique<LogAppendWorkload>(c);
    }
    if (o.workload == "fileserver") {
        FileServerConfig c;
        c.numOps = o.ops ? o.ops : 8000;
        c.seed = o.seed;
        return std::make_unique<FileServerWorkload>(c);
    }
    return nullptr;
}

const char *
opName(std::uint8_t op)
{
    switch (op) {
      case 0: return "read";
      case 1: return "write";
      case 2: return "persist";
    }
    return "unknown";
}

bool
matches(const Options &o, const AuditRecord &r)
{
    if (o.gid >= 0 && r.gid() != static_cast<std::uint32_t>(o.gid))
        return false;
    if (o.fid >= 0 && r.fid() != static_cast<std::uint32_t>(o.fid))
        return false;
    if (o.op != "any" && o.op != opName(r.op))
        return false;
    return true;
}

void
writeReport(std::ostream &os, const Options &o, const SimConfig &cfg,
            const AuditLog &log, const AuditScanResult &scan,
            const std::vector<AuditRecord> &selected, bool crashed,
            bool recovered)
{
    report::JsonWriter w(os);
    report::beginReport(w, report::auditReportSchema,
                        report::auditReportVersion);

    w.beginObject("config");
    w.field("scheme", schemeName(cfg.scheme));
    w.field("workload", o.workload);
    w.field("ops", o.ops);
    w.field("seed", o.seed);
    w.field("audit_filter", auditFilterSpec(cfg.sec));
    w.field("crash_at_write", o.crashAtWrite);
    w.field("crashed", crashed);
    w.field("recovered", recovered);
    w.endObject();

    w.beginObject("log");
    w.field("appended", log.appendedRecords());
    w.field("acked", log.ackedRecords());
    w.field("recovered", static_cast<std::uint64_t>(
                             scan.records.size()));
    w.field("integrity_truncated", scan.integrityTruncated);
    w.field("lines_scanned", scan.linesScanned);
    w.field("capacity_records", log.capacityRecords());
    w.field("overflow_dropped", log.overflowDropped());
    w.field("crash_dropped", log.crashDropped());
    w.endObject();

    w.beginObject("query");
    w.field("gid", static_cast<std::int64_t>(o.gid));
    w.field("fid", static_cast<std::int64_t>(o.fid));
    w.field("op", o.op);
    w.field("limit", o.limit);
    w.field("selected", static_cast<std::uint64_t>(selected.size()));
    w.endObject();

    std::uint64_t byOp[3] = {0, 0, 0};
    std::map<std::uint32_t, std::uint64_t> byGid;
    for (const auto &r : selected) {
        if (r.op < 3)
            ++byOp[r.op];
        ++byGid[r.gid()];
    }
    w.beginObject("summary");
    w.field("reads", byOp[0]);
    w.field("writes", byOp[1]);
    w.field("persists", byOp[2]);
    w.beginObject("by_gid");
    for (const auto &[gid, n] : byGid)
        w.field(std::to_string(gid), n);
    w.endObject();
    w.endObject();

    w.beginArray("records");
    for (const auto &r : selected) {
        w.beginObject();
        w.field("seq", r.seq);
        w.field("tick", r.tick);
        w.field("addr", r.addr);
        w.field("gid", static_cast<std::uint64_t>(r.gid()));
        w.field("fid", static_cast<std::uint64_t>(r.fid()));
        w.field("op", opName(r.op));
        w.field("core", static_cast<std::uint64_t>(r.core));
        w.field("scheme", static_cast<std::uint64_t>(r.scheme));
        w.endObject();
    }
    w.endArray();
    w.endObject();
    os << "\n";
}

bool
writeCsv(const std::string &path,
         const std::vector<AuditRecord> &selected)
{
    std::ofstream os(path);
    if (!os)
        return false;
    os << "seq,tick,addr,gid,fid,op,core,scheme\n";
    for (const auto &r : selected)
        os << r.seq << ',' << r.tick << ',' << r.addr << ','
           << r.gid() << ',' << r.fid() << ',' << opName(r.op) << ','
           << unsigned(r.core) << ',' << unsigned(r.scheme) << "\n";
    return os.good();
}

int
auditqMain(int argc, char **argv)
{
    Options opt;
    if (int rc = parseArgs(argc, argv, opt))
        return rc;

    SimConfig cfg;
    cfg.scheme = opt.scheme;
    cfg.seed = opt.seed;
    if (!parseAuditFilter(opt.auditFilter, cfg.sec)) {
        std::fprintf(stderr, "bad --audit-filter '%s'\n",
                     opt.auditFilter.c_str());
        return 2;
    }
    cfg.layout.auditLogBytes = auditLogDefaultBytes;

    auto workload = makeWorkload(opt);
    if (!workload) {
        std::fprintf(stderr, "unknown workload '%s'\n",
                     opt.workload.c_str());
        return 2;
    }

    System sys(cfg);
    FaultInjector inj;
    if (opt.crashAtWrite) {
        FaultSpec spec;
        spec.kind = FaultKind::PowerLossAtWrite;
        spec.atWrite = opt.crashAtWrite;
        inj.schedule(spec);
        sys.setFaultInjector(&inj);
    }

    bool crashed = false;
    bool recovered = false;
    try {
        runWorkload(sys, *workload);
    } catch (const PowerLossEvent &) {
        crashed = true;
    }
    if (crashed) {
        sys.crash();
        recovered = sys.recover();
    } else if (sys.mc().auditLog()) {
        sys.mc().auditLog()->drain(sys.now());
    }

    const AuditLog *log = sys.mc().auditLog();
    if (!log)
        fatal("auditq: scheme '%s' has no audit log (no metadata "
              "carve-out)", schemeName(cfg.scheme));

    AuditScanResult scan = log->scan();
    std::vector<AuditRecord> selected;
    for (const auto &r : scan.records) {
        if (!matches(opt, r))
            continue;
        selected.push_back(r);
        if (opt.limit && selected.size() >= opt.limit)
            break;
    }

    if (!opt.csvOut.empty() && !writeCsv(opt.csvOut, selected)) {
        std::fprintf(stderr, "cannot write CSV '%s'\n",
                     opt.csvOut.c_str());
        return 1;
    }

    if (opt.reportOut.empty()) {
        writeReport(std::cout, opt, cfg, *log, scan, selected,
                    crashed, recovered);
    } else {
        std::ofstream f(opt.reportOut);
        if (!f)
            fatal("cannot open %s", opt.reportOut.c_str());
        writeReport(f, opt, cfg, *log, scan, selected, crashed,
                    recovered);
    }
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    try {
        return auditqMain(argc, argv);
    } catch (const FatalError &e) {
        std::fprintf(stderr, "fatal: %s\n", e.what());
        return 4;
    } catch (const std::exception &e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        return 4;
    }
}
