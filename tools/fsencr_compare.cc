/**
 * @file
 * fsencr-compare — regression gate over two machine-readable reports.
 *
 * Diffs a baseline fsencr-run-report or fsencr-bench-report against a
 * current one, metric by metric, with configurable relative/absolute
 * thresholds. The simulator is deterministic, so an identical-seed
 * rerun compares exactly equal at any threshold; a non-zero exit means
 * the model got slower (or the reports don't match structurally).
 *
 * Exit codes: 0 clean (no regressions), 1 at least one regression,
 * 2 structural error (unreadable file, schema mismatch, missing rows).
 *
 * Examples:
 *   fsencr-compare bench/baselines/REPORT_fillrandom-S.json now.json
 *   fsencr-compare --rel 0.02 --report cmp.json base.json cur.json
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

#include "common/cli.hh"
#include "common/compare.hh"
#include "common/json.hh"
#include "common/report.hh"

using namespace fsencr;

namespace {

bool
loadJson(const std::string &path, json::Value &out, std::string &err)
{
    std::ifstream is(path);
    if (!is) {
        err = "cannot open '" + path + "'";
        return false;
    }
    std::ostringstream buf;
    buf << is.rdbuf();
    if (!json::parse(buf.str(), out)) {
        err = "cannot parse '" + path + "' as JSON";
        return false;
    }
    return true;
}

} // namespace

int
main(int argc, char **argv)
{
    compare::Options opt;
    std::string report_out;
    bool quiet = false;
    std::string baseline_path, current_path;

    cli::Parser p("[options]");
    p.optDouble("--rel", "F",
                "relative regression threshold (default 0.05)",
                &opt.relTolerance)
        .optDouble("--abs", "F",
                   "absolute threshold in metric units (default 0)",
                   &opt.absTolerance)
        .opt("--report", "FILE", "write a fsencr-compare-report JSON",
             &report_out)
        .flag("--quiet", "summary line only, no per-metric listing",
              &quiet)
        .positional("BASELINE.json", &baseline_path)
        .positional("CURRENT.json", &current_path)
        .epilogue("exit: 0 clean, 1 regression, 2 structural error");
    if (int rc = p.parse(argc, argv))
        return rc;
    if (current_path.empty()) {
        p.usage(stdout, argv[0]);
        return 2;
    }

    json::Value baseline, current;
    std::string err;
    compare::Result result;
    if (!loadJson(baseline_path, baseline, err) ||
        !loadJson(current_path, current, err)) {
        std::fprintf(stderr, "fsencr-compare: %s\n", err.c_str());
        result.error = err;
    } else {
        result = compare::compareReports(baseline, current, opt);
    }

    if (!quiet) {
        for (const compare::Delta &d : result.deltas) {
            if (d.status == compare::Status::Unchanged &&
                d.baseline == d.current)
                continue; // identical metrics are noise on a terminal
            std::printf("%-10s %-40s %.6g -> %.6g (%+.2f%%)\n",
                        compare::statusName(d.status), d.metric.c_str(),
                        d.baseline, d.current,
                        (d.ratio - 1.0) * 100.0);
        }
    }
    std::printf("fsencr-compare: %u regressed, %u improved, "
                "%u unchanged%s%s\n",
                result.regressed, result.improved, result.unchanged,
                result.error.empty() ? "" : " -- error: ",
                result.error.c_str());

    if (!report_out.empty()) {
        std::ofstream os(report_out);
        if (!os) {
            std::fprintf(stderr, "cannot write report '%s'\n",
                         report_out.c_str());
            return 2;
        }
        report::JsonWriter w(os);
        compare::writeCompareReport(w, baseline_path, current_path, opt,
                                    result);
    }
    return compare::exitCodeFor(result);
}
