/**
 * @file
 * fsencr-crashtest — CrashMonkey-style crash-consistency stress
 * harness (see docs/ARCHITECTURE.md, "Fault model & recovery
 * semantics").
 *
 * The harness runs a seeded multi-file workload against a fresh
 * System, schedules one fault per run (power loss at the Nth NVM
 * write, a torn or dropped line persist, or an at-rest bit flip in
 * data or counter metadata), crashes, recovers, and checks four
 * invariant families:
 *
 *   durability   every fsync'd version is still readable, except on
 *                lines the injected fault itself hit;
 *   consistency  every line of every clean file matches exactly one
 *                version the workload ever wrote (no torn/mixed state
 *                reaches software);
 *   isolation    only fault-affected files are quarantined, their IO
 *                fails with structured errors, and their walled-off
 *                lines expose no plaintext (they read back zeroed);
 *   metadata     the recovered Merkle state re-verifies.
 *
 * The matrix has a persistence-domain dimension: --persist-domain
 * eadr reruns every class with cache-resident durability expectations
 * (unaffected lines must recover to their *last written* version, not
 * merely the last fsync'd one) and adds a sixth class, partialflush —
 * a backup-power flush truncated after a seeded number of drained
 * lines, which recovery must degrade from gracefully (Osiris-style
 * probing of the unflushed tail, quarantining only what cannot be
 * reconstructed).
 *
 * Everything — op list, crash ordinals, torn lengths, flipped bits,
 * flush truncation points — derives from --seed, so a run is exactly
 * reproducible: same seed, same crash points, same verdicts, same
 * JSON report (fsencr-crashtest-report v1, no wall-clock timestamps).
 */

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "common/cli.hh"
#include "common/logging.hh"
#include "common/report.hh"
#include "common/rng.hh"
#include "fault/fault_injector.hh"
#include "sim/system.hh"
#include "workloads/workload.hh"

using namespace fsencr;

namespace {

constexpr const char *kPass = "crash-pw";
constexpr unsigned pagesPerFile = 2;
constexpr unsigned linesPerPage =
    static_cast<unsigned>(pageSize / blockSize);
constexpr unsigned linesPerFile = pagesPerFile * linesPerPage;

/** The fault classes one run can exercise. */
enum class FaultClass {
    MidOpPowerLoss,
    TornWrite,
    DroppedWrite,
    DataBitFlip,
    MetaBitFlip,
    PartialBackupFlush, //!< eADR only: truncated crash-time flush
};

/** The ADR matrix. The cycling order is part of every committed
 *  seed's reproduction recipe — append, never reorder. */
constexpr FaultClass allClasses[] = {
    FaultClass::MidOpPowerLoss, FaultClass::TornWrite,
    FaultClass::DroppedWrite,   FaultClass::DataBitFlip,
    FaultClass::MetaBitFlip,
};

/** The eADR matrix adds the interrupted backup-power flush. */
constexpr FaultClass eadrClasses[] = {
    FaultClass::MidOpPowerLoss,  FaultClass::TornWrite,
    FaultClass::DroppedWrite,    FaultClass::DataBitFlip,
    FaultClass::MetaBitFlip,     FaultClass::PartialBackupFlush,
};

const char *
faultClassName(FaultClass c)
{
    switch (c) {
      case FaultClass::MidOpPowerLoss: return "midop";
      case FaultClass::TornWrite: return "torn";
      case FaultClass::DroppedWrite: return "dropped";
      case FaultClass::DataBitFlip: return "databitflip";
      case FaultClass::MetaBitFlip: return "metabitflip";
      case FaultClass::PartialBackupFlush: return "partialflush";
    }
    return "unknown";
}

struct Options
{
    std::uint64_t seed = 1;
    unsigned crashes = 5;
    std::string fault = "all";
    unsigned ops = 160;
    unsigned files = 4;
    Scheme scheme = Scheme::FsEncr;
    std::string reportOut;
    bool json = false;
    bool audit = false;
    /** Parsed from mc.persistDomain after parseArgs. */
    PersistDomain persistDomain = PersistDomain::Adr;
    bool failFast = false;
    /** The shared MC knob bundle (--mc-banks/--mc-mshrs/--mc-shards/
     *  --audit-filter/--persist-domain/--backup-flush-budget). */
    McParams mc;
};

bool
parseScheme(const std::string &s, Scheme &out)
{
    if (s == "none" || s == "ext4-dax") {
        out = Scheme::NoEncryption;
    } else if (s == "baseline") {
        out = Scheme::BaselineSecurity;
    } else if (s == "fsencr") {
        out = Scheme::FsEncr;
    } else if (s == "swenc" || s == "software") {
        out = Scheme::SoftwareEncryption;
    } else {
        return false;
    }
    return true;
}

int
parseArgs(int argc, char **argv, Options &opt)
{
    cli::Parser p;
    p.optU64("--seed", "N",
             "master seed (crash points, torn lengths, bits)",
             &opt.seed)
        .optUnsigned("--crashes", "K",
                     "number of crash-recover runs (default 5)",
                     &opt.crashes)
        .opt("--fault", "CLASS",
             "{midop|torn|dropped|databitflip|metabitflip|"
             "partialflush|all}",
             &opt.fault)
        .optUnsigned("--ops", "N",
                     "workload operations per run (default 160)",
                     &opt.ops)
        .optUnsigned("--files", "F",
                     "files in the working set (default 4)",
                     &opt.files)
        .custom("--scheme", "S",
                "{none|baseline|fsencr|swenc} (default fsencr)",
                [&opt](const std::string &v) {
                    if (!parseScheme(v, opt.scheme)) {
                        std::fprintf(stderr, "unknown scheme\n");
                        return false;
                    }
                    return true;
                })
        .opt("--report", "FILE",
             "write the fsencr-crashtest-report v1 JSON",
             &opt.reportOut)
        .flag("--json", "print the report to stdout", &opt.json)
        .flag("--audit",
              "run with the audit ride-along on and check the "
              "no-lost/no-forged-records invariants",
              &opt.audit)
        .flag("--fail-fast",
              "stop after the first failing run instead of finishing "
              "the matrix",
              &opt.failFast);
    cli::addMcOptions(p, opt.mc);
    if (int rc = p.parse(argc, argv))
        return rc;
    if (!parsePersistDomain(opt.mc.persistDomain,
                            opt.persistDomain)) {
        std::fprintf(stderr, "bad --persist-domain '%s'\n",
                     opt.mc.persistDomain.c_str());
        return 2;
    }
    if (opt.crashes == 0 || opt.files == 0 || opt.ops < 2) {
        std::fprintf(stderr, "need --crashes>=1 --files>=1 --ops>=2\n");
        return 2;
    }
    bool known = opt.fault == "all";
    for (auto c : eadrClasses)
        known |= opt.fault == faultClassName(c);
    if (!known) {
        std::fprintf(stderr, "unknown fault class '%s'\n",
                     opt.fault.c_str());
        return 2;
    }
    if (opt.fault ==
            faultClassName(FaultClass::PartialBackupFlush) &&
        opt.persistDomain != PersistDomain::Eadr) {
        std::fprintf(stderr, "--fault partialflush needs "
                             "--persist-domain eadr (ADR has no "
                             "backup-power flush to interrupt)\n");
        return 2;
    }
    return 0;
}

FaultClass
classForRun(const Options &o, unsigned run)
{
    if (o.fault == "all") {
        // ADR keeps its historical 5-class cycle byte-identically;
        // eADR interleaves the sixth class.
        if (o.persistDomain == PersistDomain::Eadr)
            return eadrClasses[run % 6];
        return allClasses[run % 5];
    }
    for (auto c : eadrClasses)
        if (o.fault == faultClassName(c))
            return c;
    return FaultClass::MidOpPowerLoss;
}

bool
isBitFlipClass(FaultClass c)
{
    return c == FaultClass::DataBitFlip || c == FaultClass::MetaBitFlip;
}

/** eADR semantics actually in effect. Mirrors System::eadrActive():
 *  the software-encryption scheme seals at writeback time, so it
 *  keeps the ADR boundary even when eADR is configured. */
bool
eadrEffective(const Options &o)
{
    return o.persistDomain == PersistDomain::Eadr &&
           o.scheme != Scheme::SoftwareEncryption;
}

/** ---- The seeded workload -------------------------------------- */

enum class OpKind { Write, Fsync, Read };

struct Op
{
    OpKind kind;
    unsigned file;
    unsigned line;
};

std::string
filePath(unsigned f)
{
    return "/pmem/ct-" + std::to_string(f) + ".dat";
}

/** The op list is a pure function of (seed, ops, files): identical in
 *  the dry run and in every crash run, so write ordinals line up. */
std::vector<Op>
makeOps(const Options &o)
{
    Rng g(o.seed ^ 0xC3A5C85C97CB3127ull);
    std::vector<Op> ops;
    ops.reserve(o.ops);
    // The first op always dirties file 0 line 0 so even tiny --ops
    // runs have something to lose.
    ops.push_back({OpKind::Write, 0, 0});
    for (unsigned i = 1; i < o.ops; ++i) {
        unsigned f = static_cast<unsigned>(g.nextBounded(o.files));
        std::uint64_t roll = g.nextBounded(100);
        if (roll < 55) {
            ops.push_back({OpKind::Write, f,
                           static_cast<unsigned>(
                               g.nextBounded(linesPerFile))});
        } else if (roll < 75) {
            ops.push_back({OpKind::Fsync, f, 0});
        } else {
            ops.push_back({OpKind::Read, f,
                           static_cast<unsigned>(
                               g.nextBounded(linesPerFile))});
        }
    }
    return ops;
}

/** Version-v content of line (f, l). Version 0 is the never-written
 *  all-zero state; every later version is a distinct seeded pattern. */
void
patternFill(std::uint64_t seed, unsigned f, unsigned l, std::uint64_t v,
            std::uint8_t *buf)
{
    if (v == 0) {
        std::memset(buf, 0, blockSize);
        return;
    }
    Rng g(seed ^ (0x9E3779B97F4A7C15ull * (f + 1)) ^
          (static_cast<std::uint64_t>(l) << 32) ^ v);
    g.fill(buf, blockSize);
}

/** What the workload believes about each line: the version it last
 *  wrote and the newest version an fsync has made durable. */
struct Oracle
{
    explicit Oracle(const Options &o)
        : cur(o.files, std::vector<std::uint64_t>(linesPerFile, 0)),
          synced(o.files, std::vector<std::uint64_t>(linesPerFile, 0))
    {}

    std::vector<std::vector<std::uint64_t>> cur;
    std::vector<std::vector<std::uint64_t>> synced;
};

/** One booted machine with the working set created and open. */
struct Machine
{
    explicit Machine(const Options &o) : sys(configFor(o))
    {
        workloads::standardEnvironment(sys, kPass);
        for (unsigned f = 0; f < o.files; ++f) {
            int fd = sys.creat(0, filePath(f), 0600, OpenFlags::Encrypted, kPass);
            sys.ftruncate(0, fd, pagesPerFile * pageSize);
            fds.push_back(fd);
        }
    }

    static SimConfig
    configFor(const Options &o)
    {
        SimConfig cfg;
        cfg.scheme = o.scheme;
        cfg.seed = o.seed;
        std::string err;
        if (!o.mc.applyTo(cfg, err))
            fatal("%s", err.c_str());
        // --audit: log every access (System sizes the region).
        if (o.audit)
            cfg.sec.auditEnabled = true;
        return cfg;
    }

    System sys;
    std::vector<int> fds;
};

struct CrashInfo
{
    bool fired = false;       //!< a PowerLossEvent was thrown
    std::uint64_t atWrite = 0;
    std::uint64_t atOp = 0;
    Tick tick = 0;
};

/** Apply one op, updating the oracle. The oracle moves *before* the
 *  simulator call for writes (a crash mid-write may or may not land
 *  the new version, and the verifier scans down from cur) and *after*
 *  it for fsync (a crash mid-fsync must not raise expectations). */
void
applyOp(Machine &m, const Options &o, const Op &op, Oracle &oracle)
{
    std::uint8_t buf[blockSize];
    switch (op.kind) {
      case OpKind::Write:
        ++oracle.cur[op.file][op.line];
        patternFill(o.seed, op.file, op.line,
                    oracle.cur[op.file][op.line], buf);
        m.sys.fileWrite(0, m.fds[op.file],
                        static_cast<std::uint64_t>(op.line) * blockSize,
                        buf, blockSize);
        break;
      case OpKind::Fsync:
        m.sys.fsync(0, m.fds[op.file]);
        oracle.synced[op.file] = oracle.cur[op.file];
        break;
      case OpKind::Read:
        m.sys.fileRead(0, m.fds[op.file],
                       static_cast<std::uint64_t>(op.line) * blockSize,
                       buf, blockSize);
        break;
    }
}

/** Run the op list until completion or power loss. */
void
runOps(Machine &m, const Options &o, const std::vector<Op> &ops,
       Oracle &oracle, CrashInfo &crash)
{
    for (std::size_t i = 0; i < ops.size(); ++i) {
        try {
            applyOp(m, o, ops[i], oracle);
        } catch (const PowerLossEvent &e) {
            crash.fired = true;
            crash.atOp = i;
            crash.atWrite = e.writeIndex;
            crash.tick = e.tick;
            return;
        }
    }
    crash.atOp = ops.size();
}

/** Drive file 0 / line 0 hard enough that its counter block is
 *  guaranteed persisted (and Merkle-covered) before an at-rest
 *  metadata flip, then make everything durable. */
void
runHammerAndSync(Machine &m, const Options &o, Oracle &oracle)
{
    Op w{OpKind::Write, 0, 0};
    Op s{OpKind::Fsync, 0, 0};
    for (int i = 0; i < 20; ++i) {
        applyOp(m, o, w, oracle);
        applyOp(m, o, s, oracle);
    }
    for (unsigned f = 0; f < o.files; ++f)
        applyOp(m, o, Op{OpKind::Fsync, f, 0}, oracle);
}

/** ---- Per-run result + invariant checking ----------------------- */

struct RunResult
{
    unsigned run = 0;
    FaultClass cls = FaultClass::MidOpPowerLoss;
    std::uint64_t ordinal = 0;  //!< crash ordinal (0 for bit flips)
    unsigned keepBytes = 0;     //!< torn runs only
    std::uint64_t flushLines = 0; //!< partialflush: lines drained
    CrashInfo crash;
    std::vector<InjectionRecord> injections;
    System::RecoveryOutcome recovery;

    bool invRecovered = false;
    bool invSyncedDurable = true;
    bool invVersionConsistent = true;
    bool invIsolation = true;
    bool invMetadataConsistent = true;

    // eADR only: unaffected lines must recover to their last *written*
    // version (the backup flush drained the caches), not merely the
    // last fsync'd one.
    bool cacheDurableChecked = false;
    bool invCacheDurable = true;

    // --audit only: the recovered log vs the golden access stream.
    bool auditChecked = false;
    std::uint64_t auditGolden = 0;    //!< records ever accepted
    std::uint64_t auditAcked = 0;     //!< acknowledged at the crash
    std::uint64_t auditRecovered = 0; //!< records the scan yielded
    bool auditTruncated = false;      //!< scan hit tampered lines
    bool invAuditPrefix = true;       //!< no forged records
    bool invAuditDurable = true;      //!< no silently lost acked ones

    bool
    pass() const
    {
        return invRecovered && invSyncedDurable &&
               invVersionConsistent && invIsolation &&
               invMetadataConsistent && invCacheDurable &&
               invAuditPrefix && invAuditDurable;
    }
};

/** Map every injection onto the (file, line) set it may legitimately
 *  have damaged; OTT-spill / Merkle-node / unknown hits make the
 *  blast radius unmappable (isolation is then not checkable). */
void
mapAffected(Machine &m, const Options &o,
            const std::vector<InjectionRecord> &log,
            std::set<std::pair<unsigned, unsigned>> &affected,
            bool &unmappable)
{
    // Device line address -> (file, line-in-file).
    std::map<Addr, std::pair<unsigned, unsigned>> lineToFile;
    for (unsigned f = 0; f < o.files; ++f) {
        auto ino = m.sys.fs().lookup(filePath(f));
        if (!ino)
            continue;
        const Inode &node = m.sys.fs().inode(*ino);
        for (unsigned b = 0; b < node.blocks.size(); ++b)
            for (unsigned i = 0; i < linesPerPage; ++i)
                lineToFile[node.blocks[b] + i * blockSize] = {
                    f, b * linesPerPage + i};
    }

    bool eadr = eadrEffective(o);
    const PhysLayout &layout = m.sys.layout();
    for (const auto &rec : log) {
        if (rec.kind == FaultKind::PowerLossAtTick)
            continue; // a pure loss damages nothing by itself
        if (rec.kind == FaultKind::PowerLossAtWrite) {
            // ADR: same story — the loss alone damages nothing. eADR:
            // the interrupted write was in flight, outside both the
            // caches and the array when power died, so the backup
            // flush cannot cover it; its target is legitimately stale
            // or (for an evicted counter block) unrecoverable.
            if (!eadr)
                continue;
        }
        Addr a = blockAlign(stripDfBit(rec.addr));
        if (layout.isMetadata(a)) {
            auto kind = layout.classifyMeta(a);
            if (kind == PhysLayout::MetaKind::AuditLog)
                continue; // damages the log, never file data
            if (kind != PhysLayout::MetaKind::Mecb &&
                kind != PhysLayout::MetaKind::Fecb) {
                // Merkle/OTT lines are rebuilt host-side or re-flushed
                // whole at crash time, so losing one in flight or to a
                // truncated backup flush is harmless; any other fault
                // kind hitting them stays unmappable.
                if (rec.kind != FaultKind::PartialBackupFlush &&
                    rec.kind != FaultKind::PowerLossAtWrite)
                    unmappable = true;
                continue;
            }
            Addr page = layout.dataPageOfMeta(a);
            auto it = lineToFile.find(page);
            if (it == lineToFile.end())
                continue; // covers general memory / free pages
            unsigned f = it->second.first;
            unsigned base = it->second.second;
            for (unsigned i = 0; i < linesPerPage; ++i)
                affected.insert({f, base + i});
        } else {
            auto it = lineToFile.find(a);
            if (it != lineToFile.end())
                affected.insert(it->second);
        }
    }
}

void
checkInvariants(Machine &m, const Options &o,
                const std::vector<Op> &ops, const Oracle &oracle,
                RunResult &r)
{
    bool eadr = eadrEffective(o);
    r.cacheDurableChecked = eadr;
    if (!r.invRecovered) {
        // Non-localizable damage: nothing further is checkable.
        r.invSyncedDurable = r.invVersionConsistent = false;
        r.invIsolation = r.invMetadataConsistent = false;
        return;
    }

    std::set<std::pair<unsigned, unsigned>> affected;
    bool unmappable = false;
    mapAffected(m, o, r.injections, affected, unmappable);

    std::set<unsigned> damaged;
    for (const auto &path : r.recovery.damagedFiles) {
        bool ours = false;
        for (unsigned f = 0; f < o.files; ++f) {
            if (path == filePath(f)) {
                damaged.insert(f);
                ours = true;
            }
        }
        if (!ours)
            r.invIsolation = false; // damage outside the working set
    }

    // Isolation: only fault-affected files may be damaged, and their
    // IO must fail with structured errors, not garbage data.
    for (unsigned f : damaged) {
        bool fault_hit = unmappable;
        for (unsigned l = 0; l < linesPerFile && !fault_hit; ++l)
            fault_hit = affected.count({f, l}) != 0;
        if (!fault_hit)
            r.invIsolation = false;

        if (m.sys.open(0, filePath(f), OpenFlags::None, kPass) >= 0)
            r.invIsolation = false;
        bool threw = false;
        std::uint8_t buf[blockSize];
        try {
            m.sys.fileRead(0, m.fds[f], 0, buf, blockSize);
        } catch (const FileDamagedError &) {
            threw = true;
        }
        if (!threw)
            r.invIsolation = false;

        // Quarantined lines must expose no plaintext: the resynced
        // architectural image reads back zeroed.
        auto ino = m.sys.fs().lookup(filePath(f));
        const Inode &node = m.sys.fs().inode(*ino);
        for (Addr page : node.blocks) {
            for (unsigned i = 0; i < linesPerPage; ++i) {
                Addr a = page + i * blockSize;
                if (!m.sys.router().isQuarantined(a))
                    continue;
                std::uint8_t arch[blockSize];
                m.sys.archMem().read(a, arch, blockSize);
                for (unsigned b = 0; b < blockSize; ++b)
                    if (arch[b] != 0)
                        r.invIsolation = false;
            }
        }
    }

    // Durability + consistency over every clean file.
    for (unsigned f = 0; f < o.files; ++f) {
        if (damaged.count(f))
            continue;
        int fd = m.sys.open(0, filePath(f), OpenFlags::None, kPass);
        if (fd < 0) {
            r.invVersionConsistent = false;
            continue;
        }
        std::uint8_t got[blockSize], want[blockSize];
        for (unsigned l = 0; l < linesPerFile; ++l) {
            m.sys.fileRead(0, fd,
                           static_cast<std::uint64_t>(l) * blockSize,
                           got, blockSize);
            bool found = false;
            std::uint64_t v = oracle.cur[f][l];
            for (;; --v) {
                patternFill(o.seed, f, l, v, want);
                if (std::memcmp(got, want, blockSize) == 0) {
                    found = true;
                    break;
                }
                if (v == 0)
                    break;
            }
            if (!found) {
                r.invVersionConsistent = false;
            } else if (v < oracle.synced[f][l] &&
                       affected.count({f, l}) == 0) {
                // An fsync'd version vanished without the fault ever
                // touching this line: a durability hole.
                r.invSyncedDurable = false;
            }
            if (eadr && found && v < oracle.cur[f][l] &&
                affected.count({f, l}) == 0 && !unmappable) {
                // Cache-resident durability: the backup-power flush
                // must have drained this line's last write. The one
                // op the crash aborted gets a version of slack — its
                // store may never have reached the caches.
                bool aborted_here =
                    r.crash.fired && r.crash.atOp < ops.size() &&
                    ops[r.crash.atOp].kind == OpKind::Write &&
                    ops[r.crash.atOp].file == f &&
                    ops[r.crash.atOp].line == l;
                if (!(aborted_here && v + 1 == oracle.cur[f][l]))
                    r.invCacheDurable = false;
            }
        }
        m.sys.closeFd(0, fd);
    }

    // The adopted post-recovery Merkle state must re-verify (every
    // shard's subtree at --mc-shards > 1).
    r.invMetadataConsistent = m.sys.router().recoverMetadata();
}

/**
 * The audit-log invariants (--audit only): the recovered log must be
 * a prefix of the golden access stream (no forged records) and must
 * not silently lose an acknowledged record — a fault that does hit
 * the log region has to surface as an integrity-truncated scan, never
 * as a quietly shorter log.
 */
void
checkAuditInvariants(Machine &m, RunResult &r)
{
    // Each shard keeps an independent audit-log slice with its own
    // golden stream; the invariants hold per slice, the report's
    // counters sum across them (one shard: the historical checks,
    // byte-identical).
    bool log_hit = false;
    const PhysLayout &layout = m.sys.layout();
    for (const auto &rec : r.injections) {
        if (rec.kind == FaultKind::PowerLossAtWrite ||
            rec.kind == FaultKind::PowerLossAtTick)
            continue;
        Addr a = blockAlign(stripDfBit(rec.addr));
        if (layout.isMetadata(a) &&
            layout.classifyMeta(a) == PhysLayout::MetaKind::AuditLog)
            log_hit = true;
    }

    McRouter &router = m.sys.router();
    for (unsigned k = 0; k < router.shardCount(); ++k) {
        const AuditLog *log = router.shard(k).auditLog();
        if (!log)
            continue;

        AuditScanResult scan = log->scan();
        r.auditChecked = true;
        std::uint64_t acked = log->ackedRecords();
        r.auditGolden += log->appendedRecords();
        r.auditAcked += acked;
        r.auditRecovered += scan.records.size();
        r.auditTruncated = r.auditTruncated || scan.integrityTruncated;

        const auto &golden = log->goldenRecords();
        if (scan.records.size() > golden.size())
            r.invAuditPrefix = false;
        for (std::size_t i = 0;
             i < scan.records.size() && i < golden.size(); ++i)
            if (!(scan.records[i] == golden[i]))
                r.invAuditPrefix = false;

        if (log_hit) {
            // Damaged log lines may truncate the recovery, but only
            // loudly: a full-length undamaged-looking scan would mean
            // the fault forged its way past the Merkle coverage.
            if (!scan.integrityTruncated &&
                scan.records.size() < acked)
                r.invAuditDurable = false;
        } else if (scan.records.size() < acked) {
            r.invAuditDurable = false;
        }
    }
}

/** ---- One crash-recover run ------------------------------------- */

/** Writes seen during the op phase of a fault-free run; crash
 *  ordinals are drawn from [1, W]. */
std::uint64_t
dryRunWrites(const Options &o, const std::vector<Op> &ops)
{
    Machine m(o);
    FaultInjector inj;
    m.sys.setFaultInjector(&inj); // after setup: count op writes only
    Oracle oracle(o);
    CrashInfo crash;
    runOps(m, o, ops, oracle, crash);
    if (crash.fired)
        fatal("crashtest: dry run tripped a fault");
    return inj.writesSeen();
}

RunResult
oneRun(const Options &o, const std::vector<Op> &ops, std::uint64_t W,
       unsigned run)
{
    RunResult r;
    r.run = run;
    r.cls = classForRun(o, run);

    Rng runRng(o.seed * 1000003ull + run);
    Machine m(o);
    FaultInjector inj;
    m.sys.setFaultInjector(&inj);

    if (!isBitFlipClass(r.cls)) {
        r.ordinal = 1 + runRng.nextBounded(W);
        FaultSpec spec;
        spec.atWrite = r.ordinal;
        switch (r.cls) {
          case FaultClass::MidOpPowerLoss:
            spec.kind = FaultKind::PowerLossAtWrite;
            break;
          case FaultClass::TornWrite:
            spec.kind = FaultKind::TornWrite;
            r.keepBytes = 8 * (1 + static_cast<unsigned>(
                                       runRng.nextBounded(7)));
            spec.keepBytes = r.keepBytes;
            spec.thenPowerLoss = true;
            break;
          case FaultClass::DroppedWrite:
            spec.kind = FaultKind::DroppedWrite;
            spec.thenPowerLoss = true;
            break;
          case FaultClass::PartialBackupFlush: {
            // Crash mid-op like a midop run, but truncate the
            // backup-power flush after a seeded number of drained
            // lines; everything dirty past that point is lost and
            // recovery must degrade gracefully.
            spec.kind = FaultKind::PowerLossAtWrite;
            FaultSpec flush;
            flush.kind = FaultKind::PartialBackupFlush;
            r.flushLines = runRng.nextBounded(16);
            flush.flushLines = r.flushLines;
            inj.schedule(flush);
            break;
          }
          default:
            break;
        }
        inj.schedule(spec);
    }

    Oracle oracle(o);
    runOps(m, o, ops, oracle, r.crash);

    if (isBitFlipClass(r.cls)) {
        // Bit-flip runs complete the workload (plus a hammer that
        // forces the target counter block to persist), crash cleanly,
        // and then corrupt the at-rest device image.
        runHammerAndSync(m, o, oracle);
        m.sys.crash();

        NvmDevice &dev = m.sys.device();
        std::uint8_t line[blockSize];
        if (r.cls == FaultClass::DataBitFlip) {
            std::vector<Addr> candidates;
            for (unsigned f = 0; f < o.files; ++f) {
                auto ino = m.sys.fs().lookup(filePath(f));
                for (Addr page : m.sys.fs().inode(*ino).blocks)
                    for (unsigned i = 0; i < linesPerPage; ++i)
                        if (dev.hasEcc(page + i * blockSize))
                            candidates.push_back(page + i * blockSize);
            }
            if (candidates.empty())
                fatal("crashtest: no persisted file lines to flip");
            Addr a = candidates[runRng.nextBounded(candidates.size())];
            unsigned bit = static_cast<unsigned>(
                runRng.nextBounded(8 * blockSize));
            dev.readLine(a, line);
            line[bit / 8] ^= 1u << (bit % 8);
            dev.writeLine(a, line);
            inj.noteTamper(a, bit);
        } else {
            // Flip a counter bit in file 0's first page: the
            // acceptance case — exactly that file must quarantine.
            auto ino = m.sys.fs().lookup(filePath(0));
            Addr page = m.sys.fs().inode(*ino).blocks[0];
            Addr meta = o.scheme == Scheme::FsEncr
                            ? m.sys.layout().fecbAddr(page)
                            : m.sys.layout().mecbAddr(page);
            dev.readLine(meta, line);
            line[9] ^= 0x04;
            dev.writeLine(meta, line);
            inj.noteTamper(meta, 9 * 8 + 2);
        }
    } else {
        if (!r.crash.fired && inj.powerLossPending()) {
            // The armed loss outlived the op stream (the faulted
            // persist was the run's last hook): deliver it now.
            try {
                inj.onTick(m.sys.now());
            } catch (const PowerLossEvent &e) {
                r.crash.fired = true;
                r.crash.atOp = ops.size();
                r.crash.atWrite = e.writeIndex;
                r.crash.tick = e.tick;
            }
        }
        m.sys.crash();
    }

    r.invRecovered = m.sys.recover();
    r.recovery = m.sys.lastRecovery();
    r.injections = inj.log();
    checkInvariants(m, o, ops, oracle, r);
    if (o.audit && r.invRecovered)
        checkAuditInvariants(m, r);
    return r;
}

/** ---- Reporting -------------------------------------------------- */

void
writeReport(std::ostream &os, const Options &o, std::uint64_t W,
            const std::vector<RunResult> &runs)
{
    report::JsonWriter w(os);
    report::beginReport(w, report::crashtestReportSchema,
                        report::crashtestReportVersion);

    w.beginObject("config");
    w.field("seed", o.seed);
    w.field("crashes", static_cast<std::uint64_t>(o.crashes));
    w.field("fault", o.fault);
    w.field("ops", static_cast<std::uint64_t>(o.ops));
    w.field("files", static_cast<std::uint64_t>(o.files));
    w.field("scheme", schemeName(o.scheme));
    w.field("persist_domain", persistDomainName(o.persistDomain));
    // Additive: absent at the defaults (historical reports stay
    // byte-identical).
    if (o.mc.shards > 1)
        w.field("mc_shards", static_cast<std::uint64_t>(o.mc.shards));
    if (o.audit)
        w.field("audit", true);
    w.endObject();

    w.field("op_phase_writes", W);

    unsigned passed = 0;
    w.beginArray("runs");
    for (const auto &r : runs) {
        w.beginObject();
        w.field("run", static_cast<std::uint64_t>(r.run));
        w.field("fault_class", faultClassName(r.cls));
        w.field("ordinal", r.ordinal);
        if (r.cls == FaultClass::TornWrite)
            w.field("keep_bytes",
                    static_cast<std::uint64_t>(r.keepBytes));
        if (r.cls == FaultClass::PartialBackupFlush)
            w.field("flush_lines", r.flushLines);

        w.beginObject("crash");
        w.field("fired", r.crash.fired);
        w.field("at_write", r.crash.atWrite);
        w.field("at_op", r.crash.atOp);
        w.field("tick", static_cast<std::uint64_t>(r.crash.tick));
        w.endObject();

        w.beginArray("injections");
        for (const auto &rec : r.injections) {
            w.beginObject();
            w.field("kind", faultKindName(rec.kind));
            w.field("addr", static_cast<std::uint64_t>(rec.addr));
            w.field("write_index", rec.writeIndex);
            w.field("tick", static_cast<std::uint64_t>(rec.tick));
            w.endObject();
        }
        w.endArray();

        w.beginObject("recovery");
        w.field("usable", r.recovery.usable);
        w.field("metadata_clean", r.recovery.metadataClean);
        w.field("tampered_leaves", r.recovery.tamperedLeaves);
        w.field("lines_examined", r.recovery.linesExamined);
        w.field("probes", r.recovery.probes);
        w.field("probe_failures", r.recovery.probeFailures);
        w.field("quarantined_lines", r.recovery.quarantinedLines);
        w.field("orphan_lines", r.recovery.orphanLines);
        w.beginArray("damaged_files");
        for (const auto &p : r.recovery.damagedFiles)
            w.value(p);
        w.endArray();
        w.endObject();

        if (r.auditChecked) {
            w.beginObject("audit");
            w.field("golden", r.auditGolden);
            w.field("acked", r.auditAcked);
            w.field("recovered", r.auditRecovered);
            w.field("integrity_truncated", r.auditTruncated);
            w.endObject();
        }

        w.beginObject("invariants");
        w.field("recovered", r.invRecovered);
        w.field("synced_durable", r.invSyncedDurable);
        w.field("version_consistent", r.invVersionConsistent);
        w.field("isolation", r.invIsolation);
        w.field("metadata_consistent", r.invMetadataConsistent);
        if (r.cacheDurableChecked)
            w.field("cache_durable", r.invCacheDurable);
        if (r.auditChecked) {
            w.field("audit_prefix", r.invAuditPrefix);
            w.field("audit_durable", r.invAuditDurable);
        }
        w.endObject();

        w.field("pass", r.pass());
        w.endObject();
        if (r.pass())
            ++passed;
    }
    w.endArray();

    w.beginObject("summary");
    w.field("runs", static_cast<std::uint64_t>(runs.size()));
    w.field("passed", static_cast<std::uint64_t>(passed));
    w.field("failed",
            static_cast<std::uint64_t>(runs.size() - passed));
    w.endObject();
    w.endObject();
    os << "\n";
}

/** One stderr line per invariant family: failed-run count over the
 *  runs that actually checked it. */
void
printInvariantTable(const std::vector<RunResult> &runs)
{
    struct Row
    {
        const char *name;
        unsigned checked = 0;
        unsigned failed = 0;
    };
    Row rows[] = {
        {"recovered"},      {"synced_durable"}, {"version_consistent"},
        {"isolation"},      {"metadata_consistent"},
        {"cache_durable"},  {"audit_prefix"},   {"audit_durable"},
    };
    for (const auto &r : runs) {
        bool vals[] = {r.invRecovered,         r.invSyncedDurable,
                       r.invVersionConsistent, r.invIsolation,
                       r.invMetadataConsistent, r.invCacheDurable,
                       r.invAuditPrefix,       r.invAuditDurable};
        bool on[] = {true, true, true, true, true,
                     r.cacheDurableChecked, r.auditChecked,
                     r.auditChecked};
        for (std::size_t i = 0; i < 8; ++i) {
            if (!on[i])
                continue;
            ++rows[i].checked;
            if (!vals[i])
                ++rows[i].failed;
        }
    }
    for (const Row &row : rows) {
        if (!row.checked)
            continue;
        std::fprintf(stderr, "%-20s %4u/%-4u %s\n", row.name,
                     row.checked - row.failed, row.checked,
                     row.failed ? "FAIL" : "PASS");
    }
}

int
crashtestMain(int argc, char **argv)
{
    Options opt;
    if (int rc = parseArgs(argc, argv, opt))
        return rc;

    std::vector<Op> ops = makeOps(opt);
    std::uint64_t W = dryRunWrites(opt, ops);
    if (W == 0)
        fatal("crashtest: workload persisted nothing; raise --ops");

    std::vector<RunResult> runs;
    runs.reserve(opt.crashes);
    for (unsigned r = 0; r < opt.crashes; ++r) {
        runs.push_back(oneRun(opt, ops, W, r));
        if (opt.failFast && !runs.back().pass()) {
            std::fprintf(stderr,
                         "fail-fast: stopping after run %u of %u\n",
                         r + 1, opt.crashes);
            break;
        }
    }

    unsigned failed = 0;
    for (const auto &r : runs) {
        if (!opt.json) {
            std::printf(
                "run %u [%s] crash at op %llu (write %llu): "
                "%s, %zu damaged, quarantined %llu -> %s\n",
                r.run, faultClassName(r.cls),
                static_cast<unsigned long long>(r.crash.atOp),
                static_cast<unsigned long long>(r.crash.atWrite),
                r.invRecovered ? "recovered" : "UNRECOVERABLE",
                r.recovery.damagedFiles.size(),
                static_cast<unsigned long long>(
                    r.recovery.quarantinedLines),
                r.pass() ? "PASS" : "FAIL");
        }
        if (!r.pass())
            ++failed;
    }

    if (opt.json)
        writeReport(std::cout, opt, W, runs);
    if (!opt.reportOut.empty()) {
        std::ofstream f(opt.reportOut);
        if (!f)
            fatal("cannot open %s", opt.reportOut.c_str());
        writeReport(f, opt, W, runs);
    }
    printInvariantTable(runs);
    if (!opt.json)
        std::printf("%u/%zu runs passed\n",
                    static_cast<unsigned>(runs.size() - failed),
                    runs.size());
    return failed == 0 ? 0 : 1;
}

} // namespace

int
main(int argc, char **argv)
{
    try {
        return crashtestMain(argc, argv);
    } catch (const FatalError &e) {
        std::fprintf(stderr, "fatal: %s\n", e.what());
        return 4;
    } catch (const std::exception &e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        return 4;
    }
}
