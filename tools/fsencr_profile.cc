/**
 * @file
 * fsencr-profile: offline analysis of contention-profiler output.
 *
 * Ingests a --profile run report (and optionally the matching
 * --trace-events capture) and emits:
 *
 *  - the ranked bottleneck table, recomputed from the per-class wait
 *    matrix and cross-checked against the report's own `bottlenecks`
 *    array (a mismatch is a tool/report skew bug and fails the run);
 *  - the Amdahl projection over the serialized-behind-Merkle-root
 *    fraction;
 *  - the top-N hottest files from the file.bytes{file} metric family;
 *  - a flamegraph-compatible folded-stack file built from the trace
 *    spans (`mc;read;counter_fetch <ticks>` per line, mergeable with
 *    flamegraph.pl or speedscope).
 *
 * Exit codes: 0 ok, 1 ranking mismatch, 2 usage/input error.
 */

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "common/cli.hh"
#include "common/json.hh"
#include "common/trace.hh"

namespace {

using fsencr::json::Value;

bool
loadJson(const std::string &path, Value &out)
{
    std::ifstream is(path);
    if (!is) {
        std::fprintf(stderr, "cannot open '%s'\n", path.c_str());
        return false;
    }
    std::ostringstream buf;
    buf << is.rdbuf();
    if (!fsencr::json::parse(buf.str(), out) || !out.isObject()) {
        std::fprintf(stderr, "cannot parse JSON in '%s'\n",
                     path.c_str());
        return false;
    }
    return true;
}

std::uint64_t
u64At(const Value &obj, const char *key)
{
    const Value *v = obj.find(key);
    return v && v->isNumber() ? v->asU64() : 0;
}

/** One recomputed wait-kind total across all traffic classes. */
struct KindTotal
{
    std::string kind; //!< report key (wait_bank, ...)
    std::string name; //!< bottleneck resource name (bank, ...)
    std::uint64_t ticks = 0;
};

/**
 * Rebuild the bottleneck ranking from profile.classes: sum each wait
 * kind over the classes, sort descending (ties keep the fixed kind
 * order, matching the profiler's stable sort).
 */
std::vector<KindTotal>
recomputeRanking(const Value &profile)
{
    static const std::pair<const char *, const char *> kinds[] = {
        {"wait_bank", "bank"},
        {"wait_mshr", "mshr"},
        {"wait_merkle", "merkle"},
        {"wait_wpq", "wpq"},
    };
    std::vector<KindTotal> totals;
    for (const auto &[key, name] : kinds)
        totals.push_back({key, name, 0});
    if (const Value *classes = profile.find("classes"))
        for (const auto &[cls, stats] : classes->object) {
            (void)cls;
            if (!stats.isObject())
                continue;
            for (KindTotal &t : totals)
                t.ticks += u64At(stats, t.kind.c_str());
        }
    std::stable_sort(totals.begin(), totals.end(),
                     [](const KindTotal &a, const KindTotal &b) {
                         return a.ticks > b.ticks;
                     });
    return totals;
}

/** Check the report's bottlenecks array lists the same ranking. */
bool
rankingMatches(const Value &profile,
               const std::vector<KindTotal> &totals)
{
    const Value *table = profile.find("bottlenecks");
    if (!table || !table->isArray() ||
        table->array.size() != totals.size())
        return false;
    for (std::size_t i = 0; i < totals.size(); ++i) {
        const Value &row = table->array[i];
        const Value *res = row.find("resource");
        if (!res || !res->isString() || res->str != totals[i].name)
            return false;
        if (u64At(row, "wait_ticks") != totals[i].ticks)
            return false;
    }
    return true;
}

void
printProfile(const Value &profile)
{
    std::uint64_t total_lat = u64At(profile, "total_latency");
    std::printf("requests        : %llu\n",
                static_cast<unsigned long long>(
                    u64At(profile, "requests")));
    std::printf("span ticks      : %llu\n",
                static_cast<unsigned long long>(
                    u64At(profile, "span_ticks")));
    std::printf("total latency   : %llu\n",
                static_cast<unsigned long long>(total_lat));
    std::printf("identity errors : %llu\n",
                static_cast<unsigned long long>(
                    u64At(profile, "identity_violations")));

    if (const Value *classes = profile.find("classes")) {
        std::printf("\n%-10s %16s %16s %16s %16s %16s\n", "class",
                    "service", "wait_bank", "wait_mshr", "wait_merkle",
                    "wait_wpq");
        for (const auto &[cls, stats] : classes->object) {
            if (!stats.isObject())
                continue;
            std::printf("%-10s %16llu %16llu %16llu %16llu %16llu\n",
                        cls.c_str(),
                        static_cast<unsigned long long>(
                            u64At(stats, "service")),
                        static_cast<unsigned long long>(
                            u64At(stats, "wait_bank")),
                        static_cast<unsigned long long>(
                            u64At(stats, "wait_mshr")),
                        static_cast<unsigned long long>(
                            u64At(stats, "wait_merkle")),
                        static_cast<unsigned long long>(
                            u64At(stats, "wait_wpq")));
        }
    }
}

void
printRanking(const std::vector<KindTotal> &totals,
             std::uint64_t total_lat)
{
    std::printf("\nbottleneck ranking (wait ticks, share of total "
                "latency)\n");
    unsigned rank = 1;
    for (const KindTotal &t : totals) {
        double share =
            total_lat
                ? static_cast<double>(t.ticks) /
                      static_cast<double>(total_lat)
                : 0.0;
        std::printf("  %u. %-8s %16llu  %6.2f%%\n", rank++,
                    t.name.c_str(),
                    static_cast<unsigned long long>(t.ticks),
                    100.0 * share);
    }
}

void
printAmdahl(const Value &profile)
{
    const Value *amdahl = profile.find("amdahl");
    if (!amdahl || !amdahl->isObject())
        return;
    const Value *sf = amdahl->find("serial_fraction");
    std::printf("\nAmdahl projection (serial fraction behind the "
                "Merkle root: %.4f)\n",
                sf && sf->isNumber() ? sf->number : 0.0);
    if (const Value *speedup = amdahl->find("speedup"))
        for (const auto &[shards, v] : speedup->object)
            if (v.isNumber())
                std::printf("  %2s shards: %.3fx\n", shards.c_str(),
                            v.number);
}

void
printHotFiles(const Value &report, unsigned top_n)
{
    const Value *metrics = report.find("metrics");
    const Value *fam = metrics ? metrics->find("file.bytes") : nullptr;
    const Value *values = fam ? fam->find("values") : nullptr;
    if (!values || !values->isObject() || values->object.empty())
        return;
    std::vector<std::pair<std::string, std::uint64_t>> files;
    for (const auto &[file, v] : values->object)
        if (v.isNumber())
            files.emplace_back(file, v.asU64());
    std::stable_sort(files.begin(), files.end(),
                     [](const auto &a, const auto &b) {
                         return a.second > b.second;
                     });
    if (files.size() > top_n)
        files.resize(top_n);
    std::printf("\nhottest files (file.bytes{file})\n");
    for (const auto &[file, bytes] : files)
        std::printf("  %-20s %16llu bytes\n", file.c_str(),
                    static_cast<unsigned long long>(bytes));
}

/**
 * Fold the per-request attribution spans into flamegraph stacks.
 *
 * The controller emits one tid-0 "mc"-category request event per
 * memory access, plus one "mc.attr" event per nonzero breakdown
 * component at the *same timestamp*; that shared timestamp is the
 * join key. Each component span becomes one three-frame stack
 * `mc;<read|write>;<component>` weighted by its ticks.
 */
bool
writeFoldedStacks(const std::string &trace_path,
                  const std::string &out_path)
{
    fsencr::trace::Tracer tracer;
    std::ifstream is(trace_path);
    if (!is) {
        std::fprintf(stderr, "cannot open '%s'\n", trace_path.c_str());
        return false;
    }
    if (!tracer.importJson(is)) {
        std::fprintf(stderr, "cannot parse trace events in '%s'\n",
                     trace_path.c_str());
        return false;
    }

    // ts -> request kind ("read"/"write") for the join below. A
    // timestamp collision between two requests would merge their
    // stacks; harmless for aggregation since the weights still add.
    std::map<fsencr::Tick, std::string> request_at;
    for (const fsencr::trace::Event &e : tracer.events())
        if (std::string(e.cat) == "mc" && e.tid == 0)
            request_at[e.ts] = e.name;

    std::map<std::string, std::uint64_t> folded;
    for (const fsencr::trace::Event &e : tracer.events()) {
        if (std::string(e.cat) != "mc.attr")
            continue;
        auto it = request_at.find(e.ts);
        std::string kind =
            it == request_at.end() ? "unattributed" : it->second;
        folded["mc;" + kind + ";" + e.name] += e.dur;
    }

    std::ofstream os(out_path);
    if (!os) {
        std::fprintf(stderr, "cannot write '%s'\n", out_path.c_str());
        return false;
    }
    for (const auto &[stack, ticks] : folded)
        os << stack << ' ' << ticks << '\n';
    if (folded.empty())
        std::fprintf(stderr,
                     "warning: no mc.attr spans in '%s' (folded "
                     "output is empty)\n",
                     trace_path.c_str());
    return os.good();
}

} // namespace

int
main(int argc, char **argv)
{
    std::string report_path, trace_path, folded_path;
    std::uint64_t top_n = 10;
    fsencr::cli::Parser p("--report FILE [options]");
    p.opt("--report", "FILE", "profiled run report (--profile run)",
          &report_path)
        .opt("--trace-events", "FILE",
             "matching --trace-events capture (enables --folded)",
             &trace_path)
        .opt("--folded", "FILE",
             "write flamegraph folded stacks from the trace spans",
             &folded_path)
        .optU64("--top", "N", "hottest files to list (default 10)",
                &top_n);
    if (p.parse(argc, argv) != 0)
        return 2;
    if (report_path.empty()) {
        p.usage(stderr, argv[0]);
        return 2;
    }
    if (!folded_path.empty() && trace_path.empty()) {
        std::fprintf(stderr, "--folded needs --trace-events\n");
        return 2;
    }

    Value report;
    if (!loadJson(report_path, report))
        return 2;
    const Value *profile = report.find("profile");
    if (!profile || !profile->isObject()) {
        std::fprintf(stderr,
                     "'%s' has no profile section (run with "
                     "--profile)\n",
                     report_path.c_str());
        return 2;
    }

    printProfile(*profile);
    std::vector<KindTotal> totals = recomputeRanking(*profile);
    printRanking(totals, u64At(*profile, "total_latency"));
    printAmdahl(*profile);
    printHotFiles(report, static_cast<unsigned>(top_n));

    if (!folded_path.empty() &&
        !writeFoldedStacks(trace_path, folded_path))
        return 2;

    if (!rankingMatches(*profile, totals)) {
        std::fprintf(stderr,
                     "error: report bottleneck table does not match "
                     "the ranking recomputed from profile.classes\n");
        return 1;
    }
    return 0;
}
