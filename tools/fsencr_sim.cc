/**
 * @file
 * fsencr_sim — the command-line front-end to the simulator (the
 * moral equivalent of gem5's se.py for this repository).
 *
 * Examples:
 *   fsencr_sim --scheme fsencr --workload fillrandom-S
 *   fsencr_sim --scheme baseline --workload ycsb --ops 8192 --stats
 *   fsencr_sim --scheme fsencr --workload dax-2 --json
 *   fsencr_sim --list-workloads
 *   fsencr_sim --workload hashmap --trace-out /tmp/hashmap.trace
 *   fsencr_sim --replay /tmp/hashmap.trace --metadata-cache-kb 128
 */

#include <cstdio>
#include <cstring>
#include <functional>
#include <iostream>
#include <map>
#include <memory>
#include <string>

#include "cpu/mem_trace.hh"
#include "workloads/dax_micro.hh"
#include "workloads/extra_workloads.hh"
#include "workloads/pmemkv_bench.hh"
#include "workloads/whisper_bench.hh"
#include "workloads/workload.hh"

using namespace fsencr;
using namespace fsencr::workloads;

namespace {

struct Options
{
    Scheme scheme = Scheme::FsEncr;
    std::string workload = "fillrandom-S";
    std::uint64_t ops = 0;  // 0 = workload default
    std::uint64_t keys = 0; // 0 = workload default
    std::size_t metadataCacheKb = 0;
    unsigned stopLoss = 0xffffffff;
    std::uint64_t seed = 42;
    bool stats = false;
    bool json = false;
    bool listWorkloads = false;
    std::string traceOut;
    std::string replayIn;
};

using Factory =
    std::function<std::unique_ptr<Workload>(const Options &)>;

/** All named workloads. */
std::map<std::string, Factory>
workloadRegistry()
{
    std::map<std::string, Factory> reg;

    auto add_pmemkv = [&reg](const std::string &name, PmemkvOp op,
                             std::size_t vbytes) {
        reg[name] = [op, vbytes](const Options &o) {
            PmemkvConfig c;
            c.op = op;
            c.valueBytes = vbytes;
            c.numKeys = o.keys ? o.keys
                               : (vbytes >= 4096 ? 2048 : 32768);
            c.numOps = o.ops ? o.ops : c.numKeys;
            c.seed = o.seed;
            return std::make_unique<PmemkvWorkload>(c);
        };
    };
    add_pmemkv("fillseq-S", PmemkvOp::FillSeq, 64);
    add_pmemkv("fillseq-L", PmemkvOp::FillSeq, 4096);
    add_pmemkv("fillrandom-S", PmemkvOp::FillRandom, 64);
    add_pmemkv("fillrandom-L", PmemkvOp::FillRandom, 4096);
    add_pmemkv("overwrite-S", PmemkvOp::Overwrite, 64);
    add_pmemkv("overwrite-L", PmemkvOp::Overwrite, 4096);
    add_pmemkv("readrandom-S", PmemkvOp::ReadRandom, 64);
    add_pmemkv("readrandom-L", PmemkvOp::ReadRandom, 4096);
    add_pmemkv("readseq-S", PmemkvOp::ReadSeq, 64);
    add_pmemkv("readseq-L", PmemkvOp::ReadSeq, 4096);

    auto add_whisper = [&reg](const std::string &name, WhisperKind k,
                              std::size_t vbytes, double rr) {
        reg[name] = [k, vbytes, rr](const Options &o) {
            WhisperConfig c;
            c.kind = k;
            c.valueBytes = vbytes;
            c.readRatio = rr;
            c.numKeys = o.keys ? o.keys : 32768;
            c.numOps = o.ops ? o.ops : c.numKeys;
            c.seed = o.seed;
            return std::make_unique<WhisperWorkload>(c);
        };
    };
    add_whisper("ycsb", WhisperKind::Ycsb, 1024, 0.5);
    add_whisper("hashmap", WhisperKind::Hashmap, 128, 0.3);
    add_whisper("ctree", WhisperKind::CTree, 128, 0.3);

    auto add_micro = [&reg](const std::string &name, DaxMicroKind k) {
        reg[name] = [k](const Options &o) {
            DaxMicroConfig c;
            c.kind = k;
            c.spanBytes = 32 << 20;
            c.swapOps = o.ops ? o.ops : 100000;
            c.seed = o.seed;
            return std::make_unique<DaxMicroWorkload>(c);
        };
    };
    add_micro("dax-1", DaxMicroKind::Dax1);
    add_micro("dax-2", DaxMicroKind::Dax2);
    add_micro("dax-3", DaxMicroKind::Dax3);
    add_micro("dax-4", DaxMicroKind::Dax4);

    reg["logappend"] = [](const Options &o) {
        LogAppendConfig c;
        c.numRecords = o.ops ? o.ops : 20000;
        c.seed = o.seed;
        return std::make_unique<LogAppendWorkload>(c);
    };
    reg["fileserver"] = [](const Options &o) {
        FileServerConfig c;
        c.numOps = o.ops ? o.ops : 8000;
        c.seed = o.seed;
        return std::make_unique<FileServerWorkload>(c);
    };
    return reg;
}

bool
parseScheme(const std::string &s, Scheme &out)
{
    if (s == "none" || s == "ext4-dax") {
        out = Scheme::NoEncryption;
    } else if (s == "baseline") {
        out = Scheme::BaselineSecurity;
    } else if (s == "fsencr") {
        out = Scheme::FsEncr;
    } else if (s == "swenc" || s == "software") {
        out = Scheme::SoftwareEncryption;
    } else {
        return false;
    }
    return true;
}

void
usage(const char *argv0)
{
    std::printf(
        "usage: %s [options]\n"
        "  --scheme {none|baseline|fsencr|swenc}   protection scheme\n"
        "  --workload NAME                         (see --list-workloads)\n"
        "  --ops N / --keys N                      workload size\n"
        "  --metadata-cache-kb N                   Table III sweep knob\n"
        "  --stop-loss N                           Osiris persistence bound\n"
        "  --seed N                                determinism\n"
        "  --stats / --json                        dump the stat tree\n"
        "  --trace-out FILE                        capture MC trace\n"
        "  --replay FILE                           replay MC trace\n"
        "  --list-workloads\n",
        argv0);
}

int
parseArgs(int argc, char **argv, Options &opt)
{
    for (int i = 1; i < argc; ++i) {
        std::string a = argv[i];
        auto next = [&]() -> const char * {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "%s needs a value\n", a.c_str());
                std::exit(2);
            }
            return argv[++i];
        };
        if (a == "--scheme") {
            if (!parseScheme(next(), opt.scheme)) {
                std::fprintf(stderr, "unknown scheme\n");
                return 2;
            }
        } else if (a == "--workload") {
            opt.workload = next();
        } else if (a == "--ops") {
            opt.ops = std::strtoull(next(), nullptr, 0);
        } else if (a == "--keys") {
            opt.keys = std::strtoull(next(), nullptr, 0);
        } else if (a == "--metadata-cache-kb") {
            opt.metadataCacheKb =
                std::strtoull(next(), nullptr, 0);
        } else if (a == "--stop-loss") {
            opt.stopLoss = static_cast<unsigned>(
                std::strtoul(next(), nullptr, 0));
        } else if (a == "--seed") {
            opt.seed = std::strtoull(next(), nullptr, 0);
        } else if (a == "--stats") {
            opt.stats = true;
        } else if (a == "--json") {
            opt.json = true;
        } else if (a == "--trace-out") {
            opt.traceOut = next();
        } else if (a == "--replay") {
            opt.replayIn = next();
        } else if (a == "--list-workloads") {
            opt.listWorkloads = true;
        } else if (a == "--help" || a == "-h") {
            usage(argv[0]);
            std::exit(0);
        } else {
            std::fprintf(stderr, "unknown option '%s'\n", a.c_str());
            usage(argv[0]);
            return 2;
        }
    }
    return 0;
}

SimConfig
configFrom(const Options &opt)
{
    SimConfig cfg;
    cfg.scheme = opt.scheme;
    cfg.seed = opt.seed;
    if (opt.metadataCacheKb)
        cfg.sec.metadataCacheBytes = opt.metadataCacheKb << 10;
    if (opt.stopLoss != 0xffffffff)
        cfg.sec.osirisStopLoss = opt.stopLoss;
    return cfg;
}

} // namespace

int
main(int argc, char **argv)
{
    Options opt;
    if (int rc = parseArgs(argc, argv, opt))
        return rc;

    auto registry = workloadRegistry();
    if (opt.listWorkloads) {
        for (const auto &[name, factory] : registry) {
            (void)factory;
            std::printf("%s\n", name.c_str());
        }
        return 0;
    }

    SimConfig cfg = configFrom(opt);

    // Trace replay mode: no OS/workload, just the memory system.
    if (!opt.replayIn.empty()) {
        MemTrace trace;
        if (!trace.load(opt.replayIn)) {
            std::fprintf(stderr, "cannot load trace '%s'\n",
                         opt.replayIn.c_str());
            return 1;
        }
        ReplayResult r = replayTrace(trace, cfg);
        std::printf("replay: %zu records, %llu requests\n",
                    trace.size(),
                    static_cast<unsigned long long>(r.requests));
        std::printf("ticks      : %llu (%.3f ms simulated)\n",
                    static_cast<unsigned long long>(r.totalTicks),
                    r.totalTicks / 1e9);
        std::printf("NVM reads  : %llu\n",
                    static_cast<unsigned long long>(r.nvmReads));
        std::printf("NVM writes : %llu\n",
                    static_cast<unsigned long long>(r.nvmWrites));
        return 0;
    }

    auto it = registry.find(opt.workload);
    if (it == registry.end()) {
        std::fprintf(stderr,
                     "unknown workload '%s' (--list-workloads)\n",
                     opt.workload.c_str());
        return 1;
    }

    System sys(cfg);
    MemTrace trace;
    if (!opt.traceOut.empty())
        sys.mc().setTraceCapture(&trace);

    auto workload = it->second(opt);
    WorkloadResult r = runWorkload(sys, *workload);

    std::printf("workload   : %s\n", workload->name().c_str());
    std::printf("scheme     : %s\n", schemeName(cfg.scheme));
    std::printf("operations : %llu\n",
                static_cast<unsigned long long>(r.operations));
    std::printf("ticks      : %llu (%.3f ms simulated, %.1f ns/op)\n",
                static_cast<unsigned long long>(r.ticks),
                r.ticks / 1e9,
                r.operations
                    ? static_cast<double>(r.ticks) / 1000.0 /
                          static_cast<double>(r.operations)
                    : 0.0);
    std::printf("NVM reads  : %llu\n",
                static_cast<unsigned long long>(r.nvmReads));
    std::printf("NVM writes : %llu\n",
                static_cast<unsigned long long>(r.nvmWrites));

    if (!opt.traceOut.empty()) {
        sys.mc().setTraceCapture(nullptr);
        if (!trace.save(opt.traceOut)) {
            std::fprintf(stderr, "cannot write trace '%s'\n",
                         opt.traceOut.c_str());
            return 1;
        }
        std::printf("trace      : %zu records -> %s\n", trace.size(),
                    opt.traceOut.c_str());
    }

    if (opt.json)
        sys.statGroup().dumpJson(std::cout);
    else if (opt.stats)
        sys.dumpStats(std::cout);
    return 0;
}
