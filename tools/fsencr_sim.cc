/**
 * @file
 * fsencr_sim — the command-line front-end to the simulator (the
 * moral equivalent of gem5's se.py for this repository).
 *
 * Examples:
 *   fsencr_sim --scheme fsencr --workload fillrandom-S
 *   fsencr_sim --scheme baseline --workload ycsb --ops 8192 --stats
 *   fsencr_sim --scheme fsencr --workload dax-2 --json
 *   fsencr_sim --list-workloads
 *   fsencr_sim --workload hashmap --trace-out /tmp/hashmap.trace
 *   fsencr_sim --replay /tmp/hashmap.trace --metadata-cache-kb 128
 */

#include <cstdio>
#include <cstring>
#include <fstream>
#include <functional>
#include <iostream>
#include <map>
#include <memory>
#include <sstream>
#include <string>

#include "common/cli.hh"
#include "common/metrics.hh"
#include "common/profile.hh"
#include "common/report.hh"
#include "common/trace.hh"
#include "cpu/mem_trace.hh"
#include "fsenc/mc_router.hh"
#include "fsenc/secure_memory_controller.hh"
#include "workloads/dax_micro.hh"
#include "workloads/extra_workloads.hh"
#include "workloads/pmemkv_bench.hh"
#include "workloads/whisper_bench.hh"
#include "workloads/workload.hh"

using namespace fsencr;
using namespace fsencr::workloads;

namespace {

struct Options
{
    Scheme scheme = Scheme::FsEncr;
    std::string workload = "fillrandom-S";
    std::uint64_t ops = 0;  // 0 = workload default
    std::uint64_t keys = 0; // 0 = workload default
    std::size_t metadataCacheKb = 0;
    unsigned stopLoss = 0xffffffff;
    std::uint64_t seed = 42;
    bool stats = false;
    bool json = false;
    bool listWorkloads = false;
    std::string traceOut;
    std::string replayIn;
    std::string reportOut;      //!< --report FILE (run report JSON)
    std::string traceEventsOut; //!< --trace-events FILE (Chrome JSON)
    Tick sampleInterval = 0;    //!< --sample-interval TICKS (0 = off)
    std::string metricsCsv;     //!< --metrics-csv FILE (interval deltas)
    std::string metricsProm;    //!< --metrics-prom FILE (text exposition)
    bool fastForward = false;   //!< --fast-forward (tick-exact batch)
    bool profile = false;       //!< --profile (contention profiler)
    /** The shared MC knob bundle (--mc-banks/--mc-mshrs/--mc-shards/
     *  --audit-filter/--persist-domain/--backup-flush-budget). */
    McParams mc;
};

using Factory =
    std::function<std::unique_ptr<Workload>(const Options &)>;

/** All named workloads. */
std::map<std::string, Factory>
workloadRegistry()
{
    std::map<std::string, Factory> reg;

    auto add_pmemkv = [&reg](const std::string &name, PmemkvOp op,
                             std::size_t vbytes) {
        reg[name] = [op, vbytes](const Options &o) {
            PmemkvConfig c;
            c.op = op;
            c.valueBytes = vbytes;
            c.numKeys = o.keys ? o.keys
                               : (vbytes >= 4096 ? 2048 : 32768);
            c.numOps = o.ops ? o.ops : c.numKeys;
            c.seed = o.seed;
            return std::make_unique<PmemkvWorkload>(c);
        };
    };
    add_pmemkv("fillseq-S", PmemkvOp::FillSeq, 64);
    add_pmemkv("fillseq-L", PmemkvOp::FillSeq, 4096);
    add_pmemkv("fillrandom-S", PmemkvOp::FillRandom, 64);
    add_pmemkv("fillrandom-L", PmemkvOp::FillRandom, 4096);
    add_pmemkv("overwrite-S", PmemkvOp::Overwrite, 64);
    add_pmemkv("overwrite-L", PmemkvOp::Overwrite, 4096);
    add_pmemkv("readrandom-S", PmemkvOp::ReadRandom, 64);
    add_pmemkv("readrandom-L", PmemkvOp::ReadRandom, 4096);
    add_pmemkv("readseq-S", PmemkvOp::ReadSeq, 64);
    add_pmemkv("readseq-L", PmemkvOp::ReadSeq, 4096);

    auto add_whisper = [&reg](const std::string &name, WhisperKind k,
                              std::size_t vbytes, double rr) {
        reg[name] = [k, vbytes, rr](const Options &o) {
            WhisperConfig c;
            c.kind = k;
            c.valueBytes = vbytes;
            c.readRatio = rr;
            c.numKeys = o.keys ? o.keys : 32768;
            c.numOps = o.ops ? o.ops : c.numKeys;
            c.seed = o.seed;
            return std::make_unique<WhisperWorkload>(c);
        };
    };
    add_whisper("ycsb", WhisperKind::Ycsb, 1024, 0.5);
    add_whisper("hashmap", WhisperKind::Hashmap, 128, 0.3);
    add_whisper("ctree", WhisperKind::CTree, 128, 0.3);

    auto add_micro = [&reg](const std::string &name, DaxMicroKind k) {
        reg[name] = [k](const Options &o) {
            DaxMicroConfig c;
            c.kind = k;
            c.spanBytes = 32 << 20;
            c.swapOps = o.ops ? o.ops : 100000;
            c.seed = o.seed;
            return std::make_unique<DaxMicroWorkload>(c);
        };
    };
    add_micro("dax-1", DaxMicroKind::Dax1);
    add_micro("dax-2", DaxMicroKind::Dax2);
    add_micro("dax-3", DaxMicroKind::Dax3);
    add_micro("dax-4", DaxMicroKind::Dax4);

    reg["logappend"] = [](const Options &o) {
        LogAppendConfig c;
        c.numRecords = o.ops ? o.ops : 20000;
        c.seed = o.seed;
        return std::make_unique<LogAppendWorkload>(c);
    };
    reg["fileserver"] = [](const Options &o) {
        FileServerConfig c;
        c.numOps = o.ops ? o.ops : 8000;
        c.seed = o.seed;
        return std::make_unique<FileServerWorkload>(c);
    };
    return reg;
}

bool
parseScheme(const std::string &s, Scheme &out)
{
    if (s == "none" || s == "ext4-dax") {
        out = Scheme::NoEncryption;
    } else if (s == "baseline") {
        out = Scheme::BaselineSecurity;
    } else if (s == "fsencr") {
        out = Scheme::FsEncr;
    } else if (s == "swenc" || s == "software") {
        out = Scheme::SoftwareEncryption;
    } else {
        return false;
    }
    return true;
}

int
parseArgs(int argc, char **argv, Options &opt)
{
    cli::Parser p;
    p.custom("--scheme", "{none|baseline|fsencr|swenc}",
             "protection scheme",
             [&opt](const std::string &v) {
                 if (!parseScheme(v, opt.scheme)) {
                     std::fprintf(stderr, "unknown scheme\n");
                     return false;
                 }
                 return true;
             })
        .opt("--workload", "NAME", "(see --list-workloads)",
             &opt.workload)
        .optU64("--ops", "N", "operation count (0 = workload default)",
                &opt.ops)
        .optU64("--keys", "N", "key count (0 = workload default)",
                &opt.keys)
        .optSize("--metadata-cache-kb", "N", "Table III sweep knob",
                 &opt.metadataCacheKb)
        .optUnsigned("--stop-loss", "N", "Osiris persistence bound",
                     &opt.stopLoss)
        .optU64("--seed", "N", "determinism", &opt.seed)
        .flag("--stats", "dump the stat tree", &opt.stats)
        .flag("--json", "dump the stat tree as JSON", &opt.json)
        .opt("--trace-out", "FILE", "capture MC trace", &opt.traceOut)
        .opt("--replay", "FILE", "replay MC trace", &opt.replayIn)
        .opt("--trace-in", "FILE", "alias of --replay", &opt.replayIn)
        .flag("--fast-forward",
              "collapse L1-hit runs into bulk clock updates "
              "(tick-exact; see docs/ARCHITECTURE.md)",
              &opt.fastForward)
        .flag("--profile",
              "contention profiler: queueing attribution + bottleneck "
              "report section (observation only)",
              &opt.profile)
        .opt("--report", "FILE", "machine-readable run report",
             &opt.reportOut)
        .opt("--trace-events", "FILE", "Chrome trace_event JSON",
             &opt.traceEventsOut)
        .optU64("--sample-interval", "TICKS",
                "metrics time-series sampling", &opt.sampleInterval)
        .opt("--metrics-csv", "FILE", "interval deltas as CSV",
             &opt.metricsCsv)
        .opt("--metrics-prom", "FILE", "Prometheus text exposition",
             &opt.metricsProm)
        .flag("--list-workloads", "print workload names and exit",
              &opt.listWorkloads);
    cli::addMcOptions(p, opt.mc);
    return p.parse(argc, argv);
}

SimConfig
configFrom(const Options &opt)
{
    SimConfig cfg;
    cfg.scheme = opt.scheme;
    cfg.seed = opt.seed;
    if (opt.metadataCacheKb)
        cfg.sec.metadataCacheBytes = opt.metadataCacheKb << 10;
    if (opt.stopLoss != 0xffffffff)
        cfg.sec.osirisStopLoss = opt.stopLoss;
    cfg.fastForward = opt.fastForward;
    cfg.profile = opt.profile;
    std::string err;
    if (!opt.mc.applyTo(cfg, err)) {
        std::fprintf(stderr, "%s\n", err.c_str());
        std::exit(2);
    }
    return cfg;
}

/** Strip trailing whitespace so fragments embed cleanly via rawField. */
std::string
trimmed(std::string s)
{
    while (!s.empty() && (s.back() == '\n' || s.back() == ' '))
        s.pop_back();
    return s;
}

/** Render the stat tree to a JSON fragment. */
std::string
statsJsonOf(const stats::StatGroup &g)
{
    std::ostringstream os;
    g.dumpJson(os);
    return trimmed(os.str());
}

/** Per-component latency histograms of the memory controller. */
std::string
latencyJsonOf(const SecureMemoryController &mc)
{
    std::ostringstream os;
    report::JsonWriter w(os);
    w.beginObject();
    report::writeHistogram(w, "read", mc.readLatencyHistogram());
    report::writeHistogram(w, "write", mc.writeLatencyHistogram());
    w.beginObject("components");
    for (unsigned c = 0; c < SecureMemoryController::numMcComponents;
         ++c)
        report::writeHistogram(w, trace::componentName(c),
                               mc.componentHistogram(c));
    w.endObject();
    w.endObject();
    return trimmed(os.str());
}

/** Machine-level latency view: per-shard histograms merged. */
std::string
latencyJsonOf(const McRouter &router)
{
    std::ostringstream os;
    report::JsonWriter w(os);
    w.beginObject();
    report::writeHistogram(w, "read", router.readLatencyHistogram());
    report::writeHistogram(w, "write",
                           router.writeLatencyHistogram());
    w.beginObject("components");
    for (unsigned c = 0; c < SecureMemoryController::numMcComponents;
         ++c)
        report::writeHistogram(w, trace::componentName(c),
                               router.componentHistogram(c));
    w.endObject();
    w.endObject();
    return trimmed(os.str());
}

void
writeConfig(report::JsonWriter &w, const Options &opt,
            const SimConfig &cfg)
{
    w.beginObject("config");
    w.field("scheme", schemeName(cfg.scheme));
    w.field("workload", opt.workload);
    w.field("ops", opt.ops);
    w.field("keys", opt.keys);
    w.field("seed", opt.seed);
    w.field("metadata_cache_bytes",
            static_cast<std::uint64_t>(cfg.sec.metadataCacheBytes));
    w.field("osiris_stop_loss",
            static_cast<std::uint64_t>(cfg.sec.osirisStopLoss));
    w.field("mc_banks", static_cast<std::uint64_t>(cfg.pcm.mcBanks));
    w.field("mc_mshrs", static_cast<std::uint64_t>(cfg.pcm.mcMshrs));
    // Additive: unsharded reports stay byte-identical.
    if (cfg.pcm.mcShards > 1)
        w.field("mc_shards",
                static_cast<std::uint64_t>(cfg.pcm.mcShards));
    w.field("fast_forward", cfg.fastForward);
    w.field("persist_domain", persistDomainName(cfg.sec.persistDomain));
    // Additive: absent in ADR / audit-off reports (byte-identity of
    // the section with older consumers that key on presence).
    if (cfg.sec.backupFlushBudgetLines)
        w.field("backup_flush_budget_lines",
                cfg.sec.backupFlushBudgetLines);
    if (cfg.sec.auditEnabled)
        w.field("audit_filter", auditFilterSpec(cfg.sec));
    if (cfg.profile)
        w.field("profile", true);
    w.endObject();
}

/**
 * The versioned run report: config + result + cycle attribution +
 * latency percentiles + full stat tree, one self-describing document.
 */
bool
writeRunReport(const std::string &path, const char *mode,
               const Options &opt, const SimConfig &cfg,
               const WorkloadResult &r, const trace::Breakdown &attr,
               const std::string &latency_json,
               const std::string &stats_json,
               const report::PersistStats &persist,
               const metrics::Sampler *sampler = nullptr,
               const metrics::Registry *metrics = nullptr,
               const std::vector<const AuditLog *> *audits = nullptr,
               const profile::Profiler *prof = nullptr,
               const report::ShardsInfo *shards = nullptr)
{
    std::ofstream os(path);
    if (!os)
        return false;
    report::JsonWriter w(os);
    // v3 is emitted only when the profile section rides along, so
    // profile-off reports stay byte-identical v2 documents.
    report::beginReport(w, report::runReportSchema,
                        prof ? report::runReportVersionProfiled
                             : report::runReportVersion);
    w.field("mode", mode);
    writeConfig(w, opt, cfg);
    w.beginObject("result");
    w.field("operations", r.operations);
    w.field("ticks", r.ticks);
    w.field("nvm_reads", r.nvmReads);
    w.field("nvm_writes", r.nvmWrites);
    w.field("ns_per_op",
            r.operations ? static_cast<double>(r.ticks) / 1000.0 /
                               static_cast<double>(r.operations)
                         : 0.0);
    w.endObject();
    report::writeBreakdown(w, "attribution", attr);
    w.rawField("latency", latency_json);
    // v2: optional timeseries + labeled-family sections (additive).
    if (sampler)
        report::writeTimeseries(w, *sampler);
    if (metrics)
        report::writeMetricsSection(w, *metrics);
    report::writePersistSection(w, persist);
    if (audits && !audits->empty())
        report::writeAuditSection(w, cfg.sec, *audits);
    if (prof)
        report::writeProfileSection(w, *prof, r.ticks);
    if (shards)
        report::writeShardsSection(w, *shards);
    w.rawField("stats", stats_json);
    w.endObject();
    return os.good();
}

bool
writeTraceEvents(const std::string &path, const trace::Tracer &tracer)
{
    std::ofstream os(path);
    if (!os)
        return false;
    tracer.exportJson(os);
    return os.good();
}

/** The real front-end, free to let model errors propagate. */
int
simMain(int argc, char **argv)
{
    Options opt;
    if (int rc = parseArgs(argc, argv, opt))
        return rc;

    auto registry = workloadRegistry();
    if (opt.listWorkloads) {
        for (const auto &[name, factory] : registry) {
            (void)factory;
            std::printf("%s\n", name.c_str());
        }
        return 0;
    }

    SimConfig cfg = configFrom(opt);

    // Trace replay mode: no OS/workload, just the memory system.
    if (!opt.replayIn.empty()) {
        if (cfg.pcm.mcShards > 1) {
            std::fprintf(stderr, "--mc-shards applies to workload "
                                 "runs; replay drives a single "
                                 "controller\n");
            return 2;
        }
        MemTrace mt;
        if (!mt.load(opt.replayIn)) {
            std::fprintf(stderr, "cannot load trace '%s'\n",
                         opt.replayIn.c_str());
            return 1;
        }
        std::unique_ptr<trace::Tracer> tracer;
        if (!opt.traceEventsOut.empty())
            tracer = std::make_unique<trace::Tracer>();

        // The replayed controller lives inside replayTrace; snapshot
        // what the output paths need before it is destroyed.
        std::string stats_json, stats_text, latency_json;
        report::PersistStats persist;
        persist.domain = persistDomainName(cfg.sec.persistDomain);
        std::unique_ptr<profile::Profiler> prof_snap;
        ReplayResult r = replayTrace(
            mt, cfg, tracer.get(),
            [&](SecureMemoryController &mc) {
                stats_json = statsJsonOf(mc.statGroup());
                latency_json = latencyJsonOf(mc);
                // Replay has no CPU model: clwb/fence counts stay 0.
                persist.stopLossPersists = mc.stopLossPersists();
                persist.backupFlushLines = mc.backupFlushLines();
                persist.backupFlushDropped = mc.backupFlushDropped();
                if (const profile::Profiler *p = mc.profiler())
                    prof_snap =
                        std::make_unique<profile::Profiler>(*p);
                std::ostringstream os;
                mc.statGroup().dump(os);
                stats_text = os.str();
            });
        // --json owns stdout: the summary is part of the document.
        if (!opt.json) {
            std::printf("replay: %zu records, %llu requests\n",
                        mt.size(),
                        static_cast<unsigned long long>(r.requests));
            std::printf("ticks      : %llu (%.3f ms simulated)\n",
                        static_cast<unsigned long long>(r.totalTicks),
                        r.totalTicks / 1e9);
            std::printf("NVM reads  : %llu\n",
                        static_cast<unsigned long long>(r.nvmReads));
            std::printf("NVM writes : %llu\n",
                        static_cast<unsigned long long>(r.nvmWrites));
        }

        if (!opt.reportOut.empty()) {
            WorkloadResult wr;
            wr.operations = r.requests;
            wr.ticks = r.totalTicks;
            wr.nvmReads = r.nvmReads;
            wr.nvmWrites = r.nvmWrites;
            if (!writeRunReport(opt.reportOut, "replay", opt, cfg, wr,
                                r.attribution, latency_json,
                                stats_json, persist, nullptr, nullptr,
                                nullptr, prof_snap.get())) {
                std::fprintf(stderr, "cannot write report '%s'\n",
                             opt.reportOut.c_str());
                return 1;
            }
        }
        if (tracer && !writeTraceEvents(opt.traceEventsOut, *tracer)) {
            std::fprintf(stderr, "cannot write trace events '%s'\n",
                         opt.traceEventsOut.c_str());
            return 1;
        }

        if (opt.json) {
            report::JsonWriter w(std::cout);
            w.beginObject();
            w.beginObject("replay");
            w.field("records", static_cast<std::uint64_t>(mt.size()));
            w.field("requests", r.requests);
            w.field("ticks", r.totalTicks);
            w.field("nvm_reads", r.nvmReads);
            w.field("nvm_writes", r.nvmWrites);
            w.endObject();
            w.rawField("stats", stats_json);
            w.endObject();
        } else if (opt.stats) {
            std::cout << stats_text;
        }
        return 0;
    }

    auto it = registry.find(opt.workload);
    if (it == registry.end()) {
        std::fprintf(stderr,
                     "unknown workload '%s' (--list-workloads)\n",
                     opt.workload.c_str());
        return 1;
    }

    if (!opt.metricsCsv.empty() && !opt.sampleInterval) {
        std::fprintf(stderr,
                     "--metrics-csv needs --sample-interval\n");
        return 2;
    }

    System sys(cfg);
    MemTrace mt;
    if (!opt.traceOut.empty())
        sys.router().setTraceCapture(&mt);
    std::unique_ptr<trace::Tracer> tracer;
    if (!opt.traceEventsOut.empty()) {
        tracer = std::make_unique<trace::Tracer>();
        sys.setTracer(tracer.get());
    }

    // Metrics: observation only — with all of these off, modeled time
    // and NVM traffic are bit-identical to a build without metrics.
    std::unique_ptr<metrics::Registry> metricsReg;
    std::unique_ptr<metrics::Sampler> sampler;
    if (opt.sampleInterval || !opt.metricsProm.empty()) {
        metricsReg = std::make_unique<metrics::Registry>();
        sys.setMetrics(metricsReg.get());
        if (opt.sampleInterval) {
            sampler = std::make_unique<metrics::Sampler>(
                *metricsReg, opt.sampleInterval, sys.now());
            sys.setSampler(sampler.get());
        }
    }

    auto workload = it->second(opt);
    WorkloadResult r = runWorkload(sys, *workload);

    // Clean end-of-run: park nothing in any shard's audit WCB (a
    // trailing half line is zero-padded, which the scanner reads as
    // EOF).
    for (unsigned k = 0; k < sys.router().shardCount(); ++k)
        if (AuditLog *al = sys.router().shard(k).auditLog())
            al->drain(sys.now());

    if (sampler) {
        sampler->finish(sys.now());
        sys.setSampler(nullptr);
    }

    // --json owns stdout: the summary is part of the document.
    if (!opt.json) {
        std::printf("workload   : %s\n", workload->name().c_str());
        std::printf("scheme     : %s\n", schemeName(cfg.scheme));
        std::printf("operations : %llu\n",
                    static_cast<unsigned long long>(r.operations));
        std::printf(
            "ticks      : %llu (%.3f ms simulated, %.1f ns/op)\n",
            static_cast<unsigned long long>(r.ticks), r.ticks / 1e9,
            r.operations ? static_cast<double>(r.ticks) / 1000.0 /
                               static_cast<double>(r.operations)
                         : 0.0);
        std::printf("NVM reads  : %llu\n",
                    static_cast<unsigned long long>(r.nvmReads));
        std::printf("NVM writes : %llu\n",
                    static_cast<unsigned long long>(r.nvmWrites));
    }

    if (!opt.traceOut.empty()) {
        sys.router().setTraceCapture(nullptr);
        if (!mt.save(opt.traceOut)) {
            std::fprintf(stderr, "cannot write trace '%s'\n",
                         opt.traceOut.c_str());
            return 1;
        }
        if (!opt.json)
            std::printf("trace      : %zu records -> %s\n", mt.size(),
                        opt.traceOut.c_str());
    }

    if (!opt.reportOut.empty()) {
        McRouter &router = sys.router();
        report::PersistStats persist;
        persist.domain = persistDomainName(cfg.sec.persistDomain);
        persist.stopLossPersists = router.stopLossPersists();
        for (unsigned i = 0; i < cfg.cpu.numCores; ++i) {
            persist.clwbs += sys.core(i).clwbs_.value();
            persist.fences += sys.core(i).fences_.value();
        }
        persist.backupFlushLines = router.backupFlushLines();
        persist.backupFlushDropped = router.backupFlushDropped();
        std::vector<const AuditLog *> audits;
        for (unsigned k = 0; k < router.shardCount(); ++k)
            if (const AuditLog *al = router.shard(k).auditLog())
                audits.push_back(al);
        profile::Profiler *prof = router.profiler();
        report::ShardsInfo shards;
        if (router.shardCount() > 1) {
            shards.count = router.shardCount();
            shards.serialTicks = sys.measuredShardSerialTicks();
            shards.visibleTicks = sys.measuredShardVisibleTicks();
            for (unsigned k = 0; k < shards.count; ++k)
                shards.perShardBusy.push_back(
                    sys.measuredShardBusyTicks(k));
            if (prof)
                shards.projectedSpeedup = prof->projectedSpeedup(
                    shards.count, shards.perShardBusy);
        }
        if (!writeRunReport(opt.reportOut, "workload", opt, cfg, r,
                            sys.measuredAttribution(),
                            shards.count ? latencyJsonOf(router)
                                         : latencyJsonOf(sys.mc()),
                            statsJsonOf(sys.statGroup()),
                            persist, sampler.get(), metricsReg.get(),
                            &audits, prof,
                            shards.count ? &shards : nullptr)) {
            std::fprintf(stderr, "cannot write report '%s'\n",
                         opt.reportOut.c_str());
            return 1;
        }
    }
    if (!opt.metricsCsv.empty()) {
        std::ofstream os(opt.metricsCsv);
        if (os)
            metrics::writeCsv(os, *sampler);
        if (!os.good()) {
            std::fprintf(stderr, "cannot write metrics CSV '%s'\n",
                         opt.metricsCsv.c_str());
            return 1;
        }
    }
    if (!opt.metricsProm.empty()) {
        std::ofstream os(opt.metricsProm);
        if (os)
            metrics::writePrometheus(os, *metricsReg);
        if (!os.good()) {
            std::fprintf(stderr, "cannot write metrics dump '%s'\n",
                         opt.metricsProm.c_str());
            return 1;
        }
    }
    if (tracer && !writeTraceEvents(opt.traceEventsOut, *tracer)) {
        std::fprintf(stderr, "cannot write trace events '%s'\n",
                     opt.traceEventsOut.c_str());
        return 1;
    }

    if (opt.json) {
        report::JsonWriter w(std::cout);
        w.beginObject();
        w.beginObject("workload");
        w.field("name", workload->name());
        w.field("scheme", schemeName(cfg.scheme));
        w.field("operations", r.operations);
        w.field("ticks", r.ticks);
        w.field("nvm_reads", r.nvmReads);
        w.field("nvm_writes", r.nvmWrites);
        w.endObject();
        w.rawField("stats", statsJsonOf(sys.statGroup()));
        w.endObject();
    } else if (opt.stats) {
        sys.dumpStats(std::cout);
    }
    return 0;
}

/** JSON error record on stderr: machine-consumable failures. */
void
emitErrorRecord(const char *kind, const char *what)
{
    report::JsonWriter w(std::cerr);
    w.beginObject();
    w.field("schema", "fsencr-error");
    w.field("version", 1);
    w.field("error", kind);
    w.field("message", what);
    w.endObject();
    std::cerr << "\n";
}

} // namespace

int
main(int argc, char **argv)
{
    // Model errors (tampered metadata, unrecoverable state, usage
    // errors surfaced as fatal()) exit cleanly with a structured
    // record instead of an uncaught-exception abort.
    try {
        return simMain(argc, argv);
    } catch (const IntegrityError &e) {
        emitErrorRecord("integrity", e.what());
        return 2;
    } catch (const FileDamagedError &e) {
        emitErrorRecord("file-damaged", e.what());
        return 3;
    } catch (const FatalError &e) {
        emitErrorRecord("fatal", e.what());
        return 4;
    }
}
